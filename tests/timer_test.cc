#include "util/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace streamlink {
namespace {

TEST(WallTimer, StartsStopped) {
  WallTimer t;
  EXPECT_FALSE(t.running());
  EXPECT_EQ(t.Nanos(), 0);
  EXPECT_EQ(t.Seconds(), 0.0);
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Stop();
  EXPECT_GE(t.Millis(), 15.0);
  EXPECT_LT(t.Millis(), 2000.0);
}

TEST(WallTimer, AccumulatesAcrossLaps) {
  WallTimer t;
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.Stop();
  double first = t.Millis();
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.Stop();
  EXPECT_GT(t.Millis(), first);
}

TEST(WallTimer, ReadsWhileRunning) {
  WallTimer t;
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(t.Nanos(), 0);
  EXPECT_TRUE(t.running());
  t.Stop();
}

TEST(WallTimer, ResetClearsState) {
  WallTimer t;
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.Stop();
  t.Reset();
  EXPECT_EQ(t.Nanos(), 0);
  EXPECT_FALSE(t.running());
}

TEST(WallTimer, StopWhenStoppedIsNoOp) {
  WallTimer t;
  t.Stop();
  EXPECT_EQ(t.Nanos(), 0);
}

TEST(WallTimer, UnitConversionsAgree) {
  WallTimer t;
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.Stop();
  EXPECT_NEAR(t.Millis(), t.Seconds() * 1e3, 1e-6);
  EXPECT_NEAR(t.Micros(), t.Seconds() * 1e6, 1e-3);
}

TEST(Stopwatch, RateComputesEventsPerSecond) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double rate = sw.Rate(1000);
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 1000.0 / 0.015);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 0.015);
}

TEST(FormatDuration, PicksAdaptiveUnits) {
  EXPECT_EQ(FormatDuration(2.5), "2.50 s");
  EXPECT_EQ(FormatDuration(0.0025), "2.50 ms");
  EXPECT_EQ(FormatDuration(2.5e-6), "2.50 us");
  EXPECT_EQ(FormatDuration(250e-9), "250 ns");
}

}  // namespace
}  // namespace streamlink

// The observability no-interference property: binding a MetricsRegistry
// and enabling the tracer must not change a single byte of what the
// system computes. Runs the same build with instrumentation fully on vs
// fully off (the null-registry baseline) and requires byte-identical
// predictor snapshots — sequential and sharded, and through the
// checkpoint path. A metric update that perturbed predictor state, edge
// order, or serialization would fail here before it could skew results.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "gen/workloads.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "util/logging.h"

namespace streamlink {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class ObsInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/obs_inv_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    obs::Tracer::Get().Disable();
    obs::Tracer::Get().Drain();
    std::filesystem::remove_all(dir_);
  }

  /// Builds the workload with instrumentation on or off and saves the
  /// folded predictor snapshot; returns its bytes.
  std::string BuildAndSave(uint32_t threads, bool instrumented,
                           const std::string& tag) {
    GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 77});
    PredictorConfig config;
    config.kind = "minhash";
    config.sketch_size = 32;
    config.threads = threads;

    obs::MetricsRegistry registry;
    if (instrumented) obs::Tracer::Get().Enable();
    ParallelIngestOptions options;
    options.metrics = instrumented ? &registry : nullptr;
    ParallelIngestEngine engine(config, options);
    VectorEdgeStream stream(g.edges);
    auto built = engine.Build(stream);
    SL_CHECK_OK(built.status());
    if (instrumented) {
      obs::Tracer::Get().Disable();
      obs::Tracer::Get().Drain();
      // The instrumented run must actually have measured something —
      // otherwise this test compares two uninstrumented builds.
      EXPECT_GT(registry.GetCounter("ingest.edges_total").Value(), 0u);
    }

    std::unique_ptr<LinkPredictor> predictor = std::move(*built);
    if (auto folded = predictor->Clone()) predictor = std::move(folded);
    const std::string path = dir_ + "/" + tag + ".snap";
    SL_CHECK_OK(predictor->Save(path));
    return ReadFileBytes(path);
  }

  std::string dir_;
};

TEST_F(ObsInvarianceTest, SequentialBuildIsByteIdenticalWithMetricsOn) {
  const std::string off = BuildAndSave(1, /*instrumented=*/false, "seq_off");
  const std::string on = BuildAndSave(1, /*instrumented=*/true, "seq_on");
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, on) << "metrics/tracing changed a sequential build";
}

TEST_F(ObsInvarianceTest, ShardedBuildIsByteIdenticalWithMetricsOn) {
  const std::string off = BuildAndSave(4, /*instrumented=*/false, "par_off");
  const std::string on = BuildAndSave(4, /*instrumented=*/true, "par_on");
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, on) << "metrics/tracing changed a sharded build";
}

TEST_F(ObsInvarianceTest, CheckpointFilesAreByteIdenticalWithMetricsOn) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 78});
  const uint64_t cadence = g.edges.size() / 4;
  ASSERT_GT(cadence, 0u);

  auto checkpointed_build = [&](bool instrumented, const std::string& tag) {
    PredictorConfig config;
    config.kind = "minhash";
    config.sketch_size = 32;
    config.threads = 1;
    auto manager = CheckpointManager::Open(
        CheckpointOptions{dir_ + "/" + tag, /*keep=*/8});
    SL_CHECK(manager.ok()) << manager.status().ToString();
    obs::MetricsRegistry registry;
    if (instrumented) manager->BindMetrics(&registry);

    ParallelIngestOptions options;
    options.metrics = instrumented ? &registry : nullptr;
    options.publish_every_edges = cadence;
    options.on_publish = manager->IngestPublisher();
    ParallelIngestEngine engine(config, options);
    VectorEdgeStream stream(g.edges);
    SL_CHECK_OK(engine.Build(stream).status());
    if (instrumented) {
      EXPECT_GT(registry.GetCounter("persist.checkpoints_total").Value(), 0u);
    }
    return std::move(*manager);
  };

  CheckpointManager off = checkpointed_build(false, "ckpt_off");
  CheckpointManager on = checkpointed_build(true, "ckpt_on");
  ASSERT_EQ(off.entries().size(), on.entries().size());
  ASSERT_FALSE(off.entries().empty());
  for (size_t i = 0; i < off.entries().size(); ++i) {
    EXPECT_EQ(off.entries()[i].stream_edges, on.entries()[i].stream_edges);
    EXPECT_EQ(
        ReadFileBytes(off.PathFor(off.entries()[i].stream_edges)),
        ReadFileBytes(on.PathFor(on.entries()[i].stream_edges)))
        << "checkpoint " << i << " differs with metrics bound";
  }
}

}  // namespace
}  // namespace streamlink

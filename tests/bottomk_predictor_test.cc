#include "core/bottomk_predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_predictor.h"
#include "eval/experiment.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "util/random.h"

namespace streamlink {
namespace {

EdgeList ReferenceStream() {
  return {{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 5}, {2, 3}};
}

TEST(BottomKPredictor, NameAndDefaults) {
  BottomKPredictor p;
  EXPECT_EQ(p.name(), "bottomk");
  EXPECT_EQ(p.options().k, 64u);
  EXPECT_TRUE(p.options().track_exact_degrees);
}

TEST(BottomKPredictor, SmallNeighborhoodsAreExact) {
  // With k=64 and degrees << k, the sketch holds the full neighborhood and
  // every estimate is exact.
  BottomKPredictor p;
  FeedStream(p, ReferenceStream());
  OverlapEstimate e = p.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(e.jaccard, 0.5);
  EXPECT_NEAR(e.intersection, 2.0, 1e-9);
  EXPECT_NEAR(e.union_size, 4.0, 1e-9);
  EXPECT_NEAR(e.adamic_adar, 2.0 / std::log(3.0), 1e-9);
}

TEST(BottomKPredictor, ExactDegrees) {
  BottomKPredictor p;
  FeedStream(p, ReferenceStream());
  EXPECT_DOUBLE_EQ(p.Degree(0), 3.0);
  EXPECT_DOUBLE_EQ(p.Degree(4), 1.0);
  EXPECT_DOUBLE_EQ(p.Degree(42), 0.0);
}

TEST(BottomKPredictor, SketchDegreesModeIsSelfContained) {
  BottomKPredictorOptions options;
  options.track_exact_degrees = false;
  options.k = 32;
  BottomKPredictor p(options);
  FeedStream(p, ReferenceStream());
  // Unsaturated sketches give exact cardinalities even without counters.
  EXPECT_DOUBLE_EQ(p.Degree(0), 3.0);
  OverlapEstimate e = p.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(e.jaccard, 0.5);
  EXPECT_NEAR(e.union_size, 4.0, 1e-9);
}

TEST(BottomKPredictor, SketchDegreesApproximateLargeNeighborhoods) {
  BottomKPredictorOptions options;
  options.track_exact_degrees = false;
  options.k = 128;
  BottomKPredictor p(options);
  EdgeList edges;
  const int degree = 5000;
  for (int i = 0; i < degree; ++i) {
    edges.push_back({0, static_cast<VertexId>(10 + i)});
  }
  FeedStream(p, edges);
  EXPECT_NEAR(p.Degree(0), degree, 5.0 * degree / std::sqrt(128.0 - 2.0));
}

TEST(BottomKPredictor, UnseenVerticesEstimateZero) {
  BottomKPredictor p;
  FeedStream(p, ReferenceStream());
  OverlapEstimate e = p.EstimateOverlap(70, 80);
  EXPECT_DOUBLE_EQ(e.jaccard, 0.0);
  EXPECT_DOUBLE_EQ(e.adamic_adar, 0.0);
}

TEST(BottomKPredictorDeathTest, TinyKAborts) {
  BottomKPredictorOptions options;
  options.k = 1;
  EXPECT_DEATH(BottomKPredictor p(options), "k >= 2");
}

TEST(BottomKPredictor, OrderIndependence) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"er", 0.02, 31});
  BottomKPredictorOptions options;
  options.k = 16;
  BottomKPredictor forward(options), backward(options);
  FeedStream(forward, g.edges);
  EdgeList reversed(g.edges.rbegin(), g.edges.rend());
  FeedStream(backward, reversed);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    EXPECT_DOUBLE_EQ(forward.EstimateOverlap(u, v).jaccard,
                     backward.EstimateOverlap(u, v).jaccard);
  }
}

TEST(BottomKPredictor, AccuracyImprovesWithK) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 32});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(2);
  auto pairs = SampleOverlappingPairs(csr, 400, rng);
  double prev = 1e9;
  for (uint32_t k : {8u, 64u, 512u}) {
    PredictorConfig config;
    config.kind = "bottomk";
    config.sketch_size = k;
    AccuracyReport report = MeasureAccuracy(g, config, pairs);
    double err = report.jaccard.MeanAbsoluteError();
    EXPECT_LT(err, prev * 1.05) << "k=" << k;
    prev = err;
  }
  EXPECT_LT(prev, 0.06);
}

TEST(BottomKPredictor, CommonNeighborsReasonableOnWorkload) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.05, 33});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(3);
  auto pairs = SampleOverlappingPairs(csr, 300, rng);
  PredictorConfig config;
  config.kind = "bottomk";
  config.sketch_size = 256;
  AccuracyReport report = MeasureAccuracy(g, config, pairs);
  EXPECT_LT(report.common_neighbors.MeanRelativeError(), 0.35);
  EXPECT_LT(report.adamic_adar.MeanRelativeError(), 0.4);
}

TEST(BottomKPredictor, MemoryIsBoundedPerVertex) {
  BottomKPredictorOptions options;
  options.k = 32;
  BottomKPredictor p(options);
  EdgeList edges;
  for (VertexId i = 0; i < 500; ++i) {
    for (VertexId j = 1; j <= 30; ++j) {
      edges.push_back({i, static_cast<VertexId>((i + j * 41) % 500)});
    }
  }
  FeedStream(p, edges);
  double per_vertex =
      static_cast<double>(p.MemoryBytes()) / p.num_vertices();
  // 32 entries * 16 bytes = 512 plus vector/object overheads.
  EXPECT_LT(per_vertex, 1300.0);
}

}  // namespace
}  // namespace streamlink

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/adjacency_graph.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace streamlink {
namespace {

TEST(EdgeType, CanonicalOrdersEndpoints) {
  EXPECT_EQ(Edge(3, 1).Canonical(), Edge(1, 3));
  EXPECT_EQ(Edge(1, 3).Canonical(), Edge(1, 3));
  EXPECT_EQ(Edge(2, 2).Canonical(), Edge(2, 2));
}

TEST(EdgeType, SelfLoopDetection) {
  EXPECT_TRUE(Edge(4, 4).IsSelfLoop());
  EXPECT_FALSE(Edge(4, 5).IsSelfLoop());
}

TEST(EdgeType, OrderingIsLexicographic) {
  EXPECT_LT(Edge(1, 2), Edge(1, 3));
  EXPECT_LT(Edge(1, 9), Edge(2, 0));
  EXPECT_FALSE(Edge(2, 2) < Edge(2, 2));
}

TEST(EdgeType, ToStringFormatsPair) {
  EXPECT_EQ(ToString(Edge(3, 7)), "(3,7)");
}

TEST(EdgeType, HashDistinguishesOrder) {
  EdgeHash h;
  EXPECT_NE(h(Edge(1, 2)), h(Edge(2, 1)));
  EXPECT_EQ(h(Edge(1, 2)), h(Edge(1, 2)));
}

TEST(AdjacencyGraph, StartsEmpty) {
  AdjacencyGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.Degree(5), 0u);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(AdjacencyGraph, AddEdgeGrowsVertexSet) {
  AdjacencyGraph g;
  EXPECT_TRUE(g.AddEdge(2, 5));
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(2, 5));
  EXPECT_TRUE(g.HasEdge(5, 2));
}

TEST(AdjacencyGraph, RejectsSelfLoopsAndDuplicates) {
  AdjacencyGraph g;
  EXPECT_FALSE(g.AddEdge(3, 3));
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_FALSE(g.AddEdge(1, 2));
  EXPECT_FALSE(g.AddEdge(2, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(AdjacencyGraph, DegreesCountNeighbors) {
  AdjacencyGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(9), 0u);
}

TEST(AdjacencyGraph, RemoveEdge) {
  AdjacencyGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  EXPECT_TRUE(g.RemoveEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.RemoveEdge(1, 2));
  EXPECT_FALSE(g.RemoveEdge(7, 9));
}

TEST(AdjacencyGraph, NeighborsAreSymmetric) {
  AdjacencyGraph g;
  g.AddEdge(4, 7);
  EXPECT_EQ(g.Neighbors(4).count(7), 1u);
  EXPECT_EQ(g.Neighbors(7).count(4), 1u);
}

TEST(AdjacencyGraphDeathTest, NeighborsOutOfRangeAborts) {
  AdjacencyGraph g(3);
  EXPECT_DEATH(g.Neighbors(5), "out of range");
}

TEST(AdjacencyGraph, SortedEdgesCanonicalAndSorted) {
  AdjacencyGraph g;
  g.AddEdge(5, 2);
  g.AddEdge(1, 0);
  g.AddEdge(3, 1);
  EdgeList edges = g.SortedEdges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], Edge(0, 1));
  EXPECT_EQ(edges[1], Edge(1, 3));
  EXPECT_EQ(edges[2], Edge(2, 5));
}

TEST(AdjacencyGraph, EnsureVerticesGrowsOnly) {
  AdjacencyGraph g(5);
  g.EnsureVertices(3);
  EXPECT_EQ(g.num_vertices(), 5u);
  g.EnsureVertices(10);
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(AdjacencyGraph, MemoryGrowsWithEdges) {
  AdjacencyGraph small, large;
  small.AddEdge(0, 1);
  for (VertexId u = 0; u < 100; ++u) {
    for (VertexId v = u + 1; v < 100; v += 7) large.AddEdge(u, v);
  }
  EXPECT_LT(small.MemoryBytes(), large.MemoryBytes());
}

TEST(CsrGraph, FromEdgesBasics) {
  CsrGraph g = CsrGraph::FromEdges({{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(CsrGraph, DropsDuplicatesAndSelfLoops) {
  CsrGraph g = CsrGraph::FromEdges({{0, 1}, {1, 0}, {0, 1}, {2, 2}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_vertices(), 3u);  // vertex 2 exists but is isolated
  EXPECT_EQ(g.Degree(2), 0u);
}

TEST(CsrGraph, HonorsExplicitVertexCount) {
  CsrGraph g = CsrGraph::FromEdges({{0, 1}}, 10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.Degree(9), 0u);
}

TEST(CsrGraph, NeighborsAreSorted) {
  CsrGraph g = CsrGraph::FromEdges({{0, 5}, {0, 2}, {0, 9}, {0, 1}});
  auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(CsrGraph, IntersectionSize) {
  // 0 and 1 share neighbors {2, 3}.
  CsrGraph g =
      CsrGraph::FromEdges({{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 5}});
  EXPECT_EQ(g.IntersectionSize(0, 1), 2u);
  EXPECT_EQ(g.IntersectionSize(4, 5), 0u);
  EXPECT_EQ(g.IntersectionSize(0, 0), 3u);
}

TEST(CsrGraph, FromAdjacencyMatches) {
  AdjacencyGraph a;
  a.AddEdge(0, 1);
  a.AddEdge(1, 2);
  a.AddEdge(3, 1);
  CsrGraph g = CsrGraph::FromAdjacency(a);
  EXPECT_EQ(g.num_vertices(), a.num_vertices());
  EXPECT_EQ(g.num_edges(), a.num_edges());
  for (VertexId u = 0; u < 4; ++u) {
    EXPECT_EQ(g.Degree(u), a.Degree(u)) << "vertex " << u;
  }
}

TEST(CsrGraph, EmptyGraph) {
  CsrGraph g = CsrGraph::FromEdges({});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(CsrGraph, MemoryAccountsArrays) {
  CsrGraph g = CsrGraph::FromEdges({{0, 1}, {1, 2}});
  EXPECT_GE(g.MemoryBytes(), 4 * sizeof(VertexId) + 4 * sizeof(uint64_t));
}

}  // namespace
}  // namespace streamlink

#include "stream/rate_meter.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/timer.h"

namespace streamlink {
namespace {

TEST(RateMeterTest, EmptyMeterReportsZero) {
  RateMeter meter;
  EXPECT_EQ(meter.total_events(), 0u);
  EXPECT_EQ(meter.LifetimeRate(), 0.0);
  EXPECT_EQ(meter.WindowRate(), 0.0);
}

TEST(RateMeterTest, SingleSampleHasNoRate) {
  RateMeter meter;
  meter.Record(1.0, 100);
  EXPECT_EQ(meter.total_events(), 100u);
  // A rate needs a time span; one instant has none.
  EXPECT_EQ(meter.LifetimeRate(), 0.0);
  EXPECT_EQ(meter.WindowRate(), 0.0);
}

TEST(RateMeterTest, LifetimeRateSpansFirstToLastSample) {
  RateMeter meter;
  meter.Record(0.0, 10);
  meter.Record(1.0, 10);
  meter.Record(2.0, 10);
  EXPECT_EQ(meter.total_events(), 30u);
  EXPECT_DOUBLE_EQ(meter.LifetimeRate(), 15.0);  // 30 events over 2s
}

TEST(RateMeterTest, WindowRateForgetsOldSamples) {
  RateMeter meter(/*window_seconds=*/1.0);
  // A slow start...
  meter.Record(0.0, 1);
  meter.Record(10.0, 100);
  meter.Record(10.5, 100);
  // ...must not drag down the recent rate: only samples within the last
  // second of t=10.5 remain, 200 events over 0.5s.
  EXPECT_DOUBLE_EQ(meter.WindowRate(), 400.0);
  // The lifetime average still sees everything.
  EXPECT_DOUBLE_EQ(meter.LifetimeRate(), 201.0 / 10.5);
}

TEST(RateMeterTest, WindowKeepsSamplesExactlyAtTheBoundary) {
  RateMeter meter(/*window_seconds=*/2.0);
  meter.Record(1.0, 10);
  meter.Record(3.0, 30);  // front sample at now - window stays included
  EXPECT_DOUBLE_EQ(meter.WindowRate(), 20.0);  // 40 events over 2s
}

TEST(RateMeterTest, SteadyStreamConvergesToTrueRate) {
  RateMeter meter(/*window_seconds=*/1.0);
  // 1000 events/sec in 10ms ticks.
  for (int i = 0; i <= 500; ++i) {
    meter.Record(i * 0.01, 10);
  }
  EXPECT_NEAR(meter.WindowRate(), 1000.0, 15.0);
  EXPECT_NEAR(meter.LifetimeRate(), 1000.0, 15.0);
}

TEST(RateMeterTest, BurstsShowInWindowButAverageOut) {
  RateMeter meter(/*window_seconds=*/1.0);
  for (int i = 0; i < 10; ++i) meter.Record(i * 1.0, 10);
  // A burst in the final second dominates the window rate.
  meter.Record(9.25, 500);
  meter.Record(9.5, 500);
  EXPECT_GT(meter.WindowRate(), 500.0);
  EXPECT_LT(meter.LifetimeRate(), 200.0);
}

TEST(RateMeterTest, DefaultCountIsOneEvent) {
  RateMeter meter;
  meter.Record(0.0);
  meter.Record(2.0);
  EXPECT_EQ(meter.total_events(), 2u);
  EXPECT_DOUBLE_EQ(meter.LifetimeRate(), 1.0);
}

TEST(RateMeterTest, WindowRollsOverCompletely) {
  RateMeter meter(/*window_seconds=*/1.0);
  // A dense burst, then a long silence: after the window rolls past every
  // burst sample, only the newest sample remains and the window rate
  // collapses to zero (one instant has no span) rather than reporting the
  // stale burst forever.
  for (int i = 0; i < 10; ++i) meter.Record(i * 0.1, 100);
  EXPECT_GT(meter.WindowRate(), 0.0);
  meter.Record(100.0, 1);
  EXPECT_EQ(meter.WindowRate(), 0.0);
  EXPECT_EQ(meter.total_events(), 1001u);
  // The next sample restarts the window from the survivor.
  meter.Record(100.5, 49);
  EXPECT_DOUBLE_EQ(meter.WindowRate(), 100.0);  // 50 events over 0.5s
}

TEST(RateMeterTest, RecordNowUsesTheMonotonicClock) {
  RateMeter meter(/*window_seconds=*/60.0);
  const double before = MonotonicSeconds();
  meter.RecordNow(10);
  meter.RecordNow();  // default count of one, same as Record
  const double after = MonotonicSeconds();
  EXPECT_EQ(meter.total_events(), 11u);
  // Timestamps came from the same process-wide epoch the caller reads, so
  // lifetime span is bounded by the bracketing reads (zero span -> rate 0).
  if (meter.LifetimeRate() > 0.0) {
    EXPECT_GE(meter.LifetimeRate(), 11.0 / (after - before + 1e-9));
  }
}

TEST(RateMeterTest, BoundGaugeMirrorsWindowRate) {
  obs::Gauge gauge;
  RateMeter meter(/*window_seconds=*/1.0);
  meter.BindGauge(&gauge);
  meter.Record(0.0, 10);
  EXPECT_DOUBLE_EQ(gauge.Value(), meter.WindowRate());
  meter.Record(0.5, 10);
  EXPECT_DOUBLE_EQ(gauge.Value(), 40.0);  // 20 events over 0.5s, live
  meter.Record(1.0, 20);
  EXPECT_DOUBLE_EQ(gauge.Value(), meter.WindowRate());
  // Detaching stops the mirror without disturbing the meter.
  meter.BindGauge(nullptr);
  meter.Record(1.25, 1000);
  EXPECT_DOUBLE_EQ(gauge.Value(), 40.0);
  EXPECT_GT(meter.WindowRate(), 40.0);
}

}  // namespace
}  // namespace streamlink

#include "core/windowed_predictor.h"

#include <gtest/gtest.h>

#include "core/exact_predictor.h"
#include "eval/experiment.h"
#include "gen/sbm.h"
#include "graph/exact_measures.h"
#include "stream/sliding_window.h"
#include "util/random.h"

namespace streamlink {
namespace {

WindowedPredictorOptions SmallWindow(uint64_t window, uint32_t buckets = 4,
                                     uint32_t k = 64) {
  WindowedPredictorOptions options;
  options.num_hashes = k;
  options.window_edges = window;
  options.num_buckets = buckets;
  return options;
}

TEST(WindowedPredictor, NameAndDefaults) {
  WindowedMinHashPredictor p;
  EXPECT_EQ(p.name(), "windowed_minhash");
  EXPECT_EQ(p.options().num_buckets, 8u);
}

TEST(WindowedPredictorDeathTest, BadOptionsAbort) {
  WindowedPredictorOptions options;
  options.num_buckets = 1;
  EXPECT_DEATH(WindowedMinHashPredictor p(options), "2 buckets");
  options.num_buckets = 8;
  options.window_edges = 4;
  EXPECT_DEATH(WindowedMinHashPredictor q(options), "one edge per bucket");
}

TEST(WindowedPredictor, BucketWidthDerivedFromWindow) {
  WindowedMinHashPredictor p(SmallWindow(100, 4));
  EXPECT_EQ(p.bucket_width(), 25u);
}

TEST(WindowedPredictor, BehavesLikeMinHashWithinWindow) {
  // Whole stream fits in the window: estimates match insert-only logic.
  WindowedMinHashPredictor p(SmallWindow(1000, 4, 64));
  FeedStream(p, {{0, 10}, {0, 11}, {1, 10}, {1, 11}});
  OverlapEstimate e = p.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(e.jaccard, 1.0);
  EXPECT_NEAR(e.intersection, 2.0, 1e-9);
  EXPECT_EQ(p.WindowDegree(0), 2u);
}

TEST(WindowedPredictor, OldEdgesExpire) {
  // Window = 8 edges in 4 buckets of 2. Fill the window with 0-1 overlap
  // edges, then push 8 unrelated edges: the old neighborhoods must vanish.
  WindowedMinHashPredictor p(SmallWindow(8, 4, 32));
  FeedStream(p, {{0, 10}, {0, 11}, {1, 10}, {1, 11}});
  EXPECT_DOUBLE_EQ(p.EstimateOverlap(0, 1).jaccard, 1.0);

  for (VertexId i = 0; i < 10; ++i) {
    p.OnEdge(Edge(100 + i, 200 + i));
  }
  OverlapEstimate e = p.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(e.jaccard, 0.0);
  EXPECT_EQ(p.WindowDegree(0), 0u);
  // The earliest fillers expired too; the most recent one is still live.
  EXPECT_EQ(p.WindowDegree(100), 0u);
  EXPECT_EQ(p.WindowDegree(109), 1u);
}

TEST(WindowedPredictor, PartialExpiryKeepsRecentBuckets) {
  // Window 8 (4 buckets of 2): insert 4 overlap edges (epochs 0-1), then 4
  // fillers (epochs 2-3) — original edges are still live (epoch 0 >
  // current(3) - 4).
  WindowedMinHashPredictor p(SmallWindow(8, 4, 32));
  FeedStream(p, {{0, 10}, {0, 11}, {1, 10}, {1, 11}});
  FeedStream(p, {{100, 200}, {101, 201}, {102, 202}, {103, 203}});
  EXPECT_DOUBLE_EQ(p.EstimateOverlap(0, 1).jaccard, 1.0);
  // Two more edges push current epoch to 4; epoch 0 and 1 expire, taking
  // all four overlap edges with them.
  FeedStream(p, {{104, 204}, {105, 205}});
  FeedStream(p, {{106, 206}, {107, 207}});
  EXPECT_DOUBLE_EQ(p.EstimateOverlap(0, 1).jaccard, 0.0);
}

TEST(WindowedPredictor, TracksExactSlidingWindowOnDriftingStream) {
  // Community drift: phase 1 connects block A internally, phase 2 block B.
  // After phase 2 fills the window, pair similarities must reflect phase 2
  // only. Compare against the exact SlidingWindowGraph at the end.
  const uint64_t window = 2000;
  WindowedMinHashPredictor sketch(SmallWindow(window, 8, 128));
  SlidingWindowGraph exact_window(window);

  Rng rng(4);
  SbmParams params;
  params.num_vertices = 600;
  params.num_blocks = 3;
  params.p_intra = 0.05;
  params.p_inter = 0.0;
  EdgeList phase1 = GenerateSbm(params, rng).graph.edges;
  SbmParams params2 = params;
  Rng rng2 = rng.Fork();
  EdgeList phase2 = GenerateSbm(params2, rng2).graph.edges;

  for (const Edge& e : phase1) {
    sketch.OnEdge(e);
    exact_window.Add(e);
  }
  for (const Edge& e : phase2) {
    sketch.OnEdge(e);
    exact_window.Add(e);
  }

  // Compare a handful of pairs against the exact window graph.
  Rng pair_rng(5);
  double total_error = 0.0;
  int count = 0;
  for (int i = 0; i < 200; ++i) {
    VertexId u = static_cast<VertexId>(pair_rng.NextBounded(600));
    VertexId v = static_cast<VertexId>(pair_rng.NextBounded(600));
    if (u == v) continue;
    double truth =
        ComputeOverlap(exact_window.graph(), u, v).Jaccard();
    double est = sketch.EstimateOverlap(u, v).jaccard;
    total_error += std::abs(est - truth);
    ++count;
  }
  ASSERT_GT(count, 0);
  // Bucket-granularity expiry and k=128 sampling both add error; the
  // average must still be small.
  EXPECT_LT(total_error / count, 0.12);
}

TEST(WindowedPredictor, FactoryBuildsWithWindowParams) {
  PredictorConfig config;
  config.kind = "windowed_minhash";
  config.sketch_size = 32;
  config.window_edges = 64;
  config.window_buckets = 4;
  auto p = MakePredictor(config);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->name(), "windowed_minhash");
}

TEST(WindowedPredictor, MemoryScalesWithBucketsTimesK) {
  WindowedMinHashPredictor small(SmallWindow(1000, 4, 16));
  WindowedMinHashPredictor large(SmallWindow(1000, 8, 64));
  EdgeList edges;
  for (VertexId i = 0; i < 200; ++i) edges.push_back({i, i + 1});
  FeedStream(small, edges);
  FeedStream(large, edges);
  EXPECT_LT(small.MemoryBytes(), large.MemoryBytes());
}

}  // namespace
}  // namespace streamlink

// The admin plane's pure pieces (obs/admin, obs/exemplar): HTTP request
// parsing, response building, the /healthz readiness rules, the /statusz
// and /tracez renderers, and the keep-the-slowest exemplar ring. Socket
// plumbing is covered by admin_endpoint_test against a live server.

#include "obs/admin.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/exemplar.h"

namespace streamlink {
namespace obs {
namespace {

TEST(HttpParse, RequestCompleteNeedsBlankLine) {
  EXPECT_FALSE(HttpRequestComplete("GET / HTTP/1.0\r\n"));
  EXPECT_TRUE(HttpRequestComplete("GET / HTTP/1.0\r\n\r\n"));
  EXPECT_TRUE(HttpRequestComplete("GET / HTTP/1.0\n\n"));  // lenient LF-only
  EXPECT_FALSE(HttpRequestComplete(""));
}

TEST(HttpParse, ExtractsThePath) {
  auto path = ParseHttpRequestPath("GET /healthz HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "/healthz");
}

TEST(HttpParse, StripsTheQueryString) {
  auto path = ParseHttpRequestPath("GET /tracez?n=5 HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "/tracez");
}

TEST(HttpParse, RejectsNonGetAndGarbage) {
  EXPECT_FALSE(ParseHttpRequestPath("POST /metrics HTTP/1.0\r\n\r\n"));
  EXPECT_FALSE(ParseHttpRequestPath("GET  HTTP/1.0\r\n\r\n").has_value());
  EXPECT_FALSE(ParseHttpRequestPath("GET metrics HTTP/1.0\r\n\r\n"));
  EXPECT_FALSE(ParseHttpRequestPath("\x16\x03\x01 TLS hello"));
}

TEST(HttpBuild, ResponseHasStatusLengthAndBody) {
  const std::string response =
      BuildHttpResponse(200, "text/plain", "hello\n");
  EXPECT_EQ(response.find("HTTP/1.0 200 OK\r\n"), 0u);
  EXPECT_NE(response.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 6), "hello\n");
}

TEST(Healthz, ReadyWhenFreshSnapshotWithinBounds) {
  HealthzView view;
  view.has_snapshot = true;
  view.staleness_edges = 10;
  view.age_seconds = 0.5;
  view.max_staleness_edges = 100;
  view.max_age_seconds = 5.0;
  const HealthzResult result = RenderHealthz(view);
  EXPECT_TRUE(result.ready);
  EXPECT_EQ(result.body, "ok\n");
}

TEST(Healthz, UnreadyWithoutSnapshot) {
  HealthzView view;  // has_snapshot defaults false
  const HealthzResult result = RenderHealthz(view);
  EXPECT_FALSE(result.ready);
  EXPECT_NE(result.body.find("no snapshot"), std::string::npos);
}

TEST(Healthz, UnreadyWhenStalenessExceedsBound) {
  HealthzView view;
  view.has_snapshot = true;
  view.staleness_edges = 101;
  view.max_staleness_edges = 100;
  EXPECT_FALSE(RenderHealthz(view).ready);
}

TEST(Healthz, UnreadyWhenTooOld) {
  HealthzView view;
  view.has_snapshot = true;
  view.age_seconds = 10.0;
  view.max_age_seconds = 5.0;
  EXPECT_FALSE(RenderHealthz(view).ready);
}

TEST(Healthz, ZeroBoundsMeanUnbounded) {
  HealthzView view;
  view.has_snapshot = true;
  view.staleness_edges = 1u << 30;
  view.age_seconds = 1e6;
  EXPECT_TRUE(RenderHealthz(view).ready);
}

TEST(Statusz, RendersEveryField) {
  StatuszView view;
  view.uptime_seconds = 12.5;
  view.predictor_kind = "minhash";
  view.snapshot_version = 3;
  view.active_connections = 2;
  view.hot_keys = {{7, 100}, {42, 50}};
  const std::string body = RenderStatusz(view);
  EXPECT_NE(body.find("uptime_seconds: 12.5"), std::string::npos);
  EXPECT_NE(body.find("predictor_kind: minhash"), std::string::npos);
  EXPECT_NE(body.find("snapshot_version: 3"), std::string::npos);
  EXPECT_NE(body.find("active_connections: 2"), std::string::npos);
  EXPECT_NE(body.find("  7: 100"), std::string::npos);
  EXPECT_NE(body.find("  42: 50"), std::string::npos);
}

TEST(Tracez, RendersHeaderAndStageColumns) {
  RequestTimeline timeline;
  timeline.request_id = 99;
  timeline.total_ns = 5000;
  timeline.stage_ns[static_cast<size_t>(ServeStage::kDecode)] = 1500;
  const std::string body = RenderTracez({timeline}, 7, 32);
  EXPECT_NE(body.find("ring capacity 32"), std::string::npos);
  EXPECT_NE(body.find("decode"), std::string::npos);
  EXPECT_NE(body.find("queue_wait"), std::string::npos);
  EXPECT_NE(body.find("99 5.0 1.5"), std::string::npos);  // us columns
}

TEST(ExemplarRing, KeepsTheSlowest) {
  ExemplarRing ring(3);
  for (uint64_t i = 1; i <= 10; ++i) {
    RequestTimeline t;
    t.request_id = i;
    t.total_ns = i * 100;
    ring.Offer(t);
  }
  EXPECT_EQ(ring.offered(), 10u);
  const auto slowest = ring.SlowestFirst();
  ASSERT_EQ(slowest.size(), 3u);
  EXPECT_EQ(slowest[0].total_ns, 1000u);
  EXPECT_EQ(slowest[1].total_ns, 900u);
  EXPECT_EQ(slowest[2].total_ns, 800u);
}

TEST(ExemplarRing, SlowRequestEvictsTheFastestResident) {
  ExemplarRing ring(2);
  RequestTimeline t;
  t.total_ns = 500;
  ring.Offer(t);
  t.total_ns = 100;
  ring.Offer(t);
  t.total_ns = 50;  // slower than nothing: dropped
  ring.Offer(t);
  t.total_ns = 900;  // evicts the 100
  ring.Offer(t);
  const auto slowest = ring.SlowestFirst();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].total_ns, 900u);
  EXPECT_EQ(slowest[1].total_ns, 500u);
}

TEST(ExemplarRing, ClearEmptiesButKeepsCounting) {
  ExemplarRing ring(4);
  RequestTimeline t;
  t.total_ns = 1;
  ring.Offer(t);
  ring.Clear();
  EXPECT_TRUE(ring.SlowestFirst().empty());
  ring.Offer(t);
  EXPECT_EQ(ring.SlowestFirst().size(), 1u);
}

TEST(ServeStageNames, AreStableAndDistinct) {
  EXPECT_STREQ(ServeStageName(ServeStage::kDecode), "decode");
  EXPECT_STREQ(ServeStageName(ServeStage::kAdmission), "admission");
  EXPECT_STREQ(ServeStageName(ServeStage::kQueueWait), "queue_wait");
  EXPECT_STREQ(ServeStageName(ServeStage::kSnapshotLookup),
               "snapshot_lookup");
  EXPECT_STREQ(ServeStageName(ServeStage::kTopK), "topk");
  EXPECT_STREQ(ServeStageName(ServeStage::kEncode), "encode");
  EXPECT_STREQ(ServeStageName(ServeStage::kWrite), "write");
}

}  // namespace
}  // namespace obs
}  // namespace streamlink

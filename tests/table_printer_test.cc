#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <string>

namespace streamlink {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "12345"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_EQ(t.num_rows(), 1u);
  std::string out = t.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TablePrinter, ExtendsForLongRows) {
  TablePrinter t({"a"});
  t.AddRow({"1", "2", "3"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(TablePrinter, NumericRowsFormatted) {
  TablePrinter t({"x"});
  t.AddNumericRow({0.123456789});
  EXPECT_NE(t.ToString().find("0.1235"), std::string::npos);
}

TEST(TablePrinter, FormatCellUsesFourSignificantDigits) {
  EXPECT_EQ(TablePrinter::FormatCell(1234567.0), "1.235e+06");
  EXPECT_EQ(TablePrinter::FormatCell(0.5), "0.5");
}

TEST(TablePrinter, EmptyTableStillRendersHeader) {
  TablePrinter t({"col"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0u);
}

}  // namespace
}  // namespace streamlink

#include "gen/churn.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/types.h"

namespace streamlink {
namespace {

uint64_t Key(const Edge& e) {
  const Edge c = e.Canonical();
  return (static_cast<uint64_t>(c.u) << 32) | c.v;
}

ChurnSpec SmallSpec() {
  ChurnSpec spec;
  spec.base_workload = "ba";
  spec.scale = 0.05;
  spec.seed = 3;
  spec.delete_fraction = 0.35;
  return spec;
}

TEST(Churn, DeterministicInSpec) {
  TurnstileWorkload a = MakeChurnWorkload(SmallSpec());
  TurnstileWorkload b = MakeChurnWorkload(SmallSpec());
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_TRUE(a.events == b.events);
  EXPECT_TRUE(a.net_edges == b.net_edges);
  EXPECT_EQ(a.name, "barabasi_albert_churn");
}

TEST(Churn, SeedChangesTheStream) {
  ChurnSpec other = SmallSpec();
  other.seed = 4;
  TurnstileWorkload a = MakeChurnWorkload(SmallSpec());
  TurnstileWorkload b = MakeChurnWorkload(other);
  EXPECT_FALSE(a.events == b.events);
}

TEST(Churn, RealizedDeleteFractionNearTarget) {
  TurnstileWorkload w = MakeChurnWorkload(SmallSpec());
  ASSERT_GT(w.events.size(), 500u);
  const double realized =
      static_cast<double>(w.deletes) / static_cast<double>(w.events.size());
  // ISSUE acceptance: deletes are at least 30% of ops on the oracle
  // workload; the generator targets 35%.
  EXPECT_GE(realized, 0.30);
  EXPECT_LE(realized, 0.40);
  EXPECT_EQ(w.inserts + w.deletes, w.events.size());
}

TEST(Churn, ZeroFractionIsInsertOnly) {
  ChurnSpec spec = SmallSpec();
  spec.delete_fraction = 0.0;
  TurnstileWorkload w = MakeChurnWorkload(spec);
  EXPECT_EQ(w.deletes, 0u);
  EXPECT_EQ(w.inserts, w.events.size());
}

TEST(Churn, ReplayOfEventsLeavesExactlyNetEdges) {
  TurnstileWorkload w = MakeChurnWorkload(SmallSpec());
  std::unordered_set<uint64_t> live;
  uint64_t skipped_self_loops = 0;
  for (const EdgeEvent& ev : w.events) {
    if (ev.op == EdgeOp::kInsert) {
      if (ev.edge.IsSelfLoop()) {
        ++skipped_self_loops;
        continue;
      }
      // The generator never emits a duplicate insert of a live edge —
      // count-based sketches are not duplicate-idempotent.
      EXPECT_TRUE(live.insert(Key(ev.edge)).second);
    } else {
      // Deletes only ever target live edges.
      EXPECT_EQ(live.erase(Key(ev.edge)), 1u);
    }
  }
  std::unordered_set<uint64_t> net;
  for (const Edge& e : w.net_edges) net.insert(Key(e));
  EXPECT_EQ(live, net);
  EXPECT_EQ(live.size() + skipped_self_loops,
            static_cast<size_t>(w.inserts - w.deletes));
}

TEST(ChurnFromEdges, DuplicateLiveInsertIsSkipped) {
  EdgeList base = {{0, 1}, {1, 0}, {0, 1}, {2, 3}};
  TurnstileWorkload w = MakeChurnFromEdges(base, 4, 0.0, 9, "dup");
  // All three spellings of (0, 1) collapse to one insert event.
  EXPECT_EQ(w.events.size(), 2u);
  EXPECT_EQ(w.net_edges.size(), 2u);
}

TEST(ChurnFromEdges, SelfLoopsPassThroughButNeverLive) {
  EdgeList base = {{5, 5}, {0, 1}};
  TurnstileWorkload w = MakeChurnFromEdges(base, 6, 0.0, 9, "loops");
  ASSERT_EQ(w.events.size(), 2u);
  EXPECT_TRUE(w.events[0].edge.IsSelfLoop());
  EXPECT_EQ(w.events[0].op, EdgeOp::kInsert);
  ASSERT_EQ(w.net_edges.size(), 1u);
  EXPECT_FALSE(w.net_edges[0].IsSelfLoop());
}

}  // namespace
}  // namespace streamlink

// End-to-end integration tests: stream -> predictors -> evaluation, the
// same pipeline the bench harness runs, at test-friendly scale.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/exact_predictor.h"
#include "core/predictor_factory.h"
#include "core/top_k_engine.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/rank_correlation.h"
#include "eval/temporal_split.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "stream/edge_stream.h"
#include "stream/stream_driver.h"
#include "util/random.h"

namespace streamlink {
namespace {

/// Every sketch predictor should beat a coarse accuracy bar on every
/// standard workload at k=128 (integration of gen + core + eval).
class SketchOnWorkload
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(SketchOnWorkload, JaccardErrorIsSmall) {
  const auto& [workload, kind] = GetParam();
  GeneratedGraph g = MakeWorkload(WorkloadSpec{workload, 0.05, 81});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(4);
  auto pairs = SampleOverlappingPairs(csr, 250, rng);

  PredictorConfig config;
  config.kind = kind;
  config.sketch_size = 128;
  AccuracyReport report = MeasureAccuracy(g, config, pairs);
  EXPECT_LT(report.jaccard.MeanAbsoluteError(), 0.08)
      << kind << " on " << workload;
  EXPECT_LT(report.common_neighbors.MeanRelativeError(), 0.8)
      << kind << " on " << workload;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SketchOnWorkload,
    ::testing::Combine(::testing::Values("ba", "er", "ws", "rmat", "sbm",
                                         "plconfig"),
                       ::testing::Values("minhash", "bottomk",
                                         "vertex_biased")));

TEST(Integration, DriverFeedsPredictorsViaCheckpoints) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 82});
  auto predictor = MakePredictor({.kind = "minhash", .sketch_size = 64});
  ASSERT_TRUE(predictor.ok());
  ExactPredictor exact;

  VectorEdgeStream stream(g.edges);
  StreamDriver driver;
  driver.AddConsumer(predictor->get());
  driver.AddConsumer(&exact);

  std::vector<double> errors_at_checkpoint;
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(5);
  auto pairs = SampleOverlappingPairs(csr, 100, rng);
  driver.SetCheckpoints({0.5, 1.0}, [&](uint64_t consumed, double) {
    AccuracyReport report =
        MeasureAccuracyAgainst(**predictor, exact, pairs);
    errors_at_checkpoint.push_back(report.jaccard.MeanAbsoluteError());
    EXPECT_EQ((*predictor)->edges_processed(), consumed);
  });
  uint64_t total = driver.Run(stream);
  EXPECT_EQ(total, g.edges.size());
  ASSERT_EQ(errors_at_checkpoint.size(), 2u);
  // Error should be modest at both points (estimates track a moving truth).
  EXPECT_LT(errors_at_checkpoint[0], 0.15);
  EXPECT_LT(errors_at_checkpoint[1], 0.15);
}

TEST(Integration, EndTaskAucSketchApproachesExact) {
  // The F6 pipeline at small scale: temporal split, feed train stream,
  // score labeled pairs, compare sketch AUC against exact AUC.
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.05, 83});
  TrainTestSplit split = MakeTemporalSplit(g.edges, 0.8);
  ASSERT_GT(split.test_positives.size(), 30u);
  Rng rng(6);
  LabeledPairs labeled = MakeLabeledPairs(split, 1.0, rng);

  auto score_all = [&](LinkPredictor& p) {
    std::vector<LabeledScore> out;
    for (size_t i = 0; i < labeled.pairs.size(); ++i) {
      out.push_back(
          LabeledScore{p.Score(LinkMeasure::kJaccard, labeled.pairs[i].u,
                               labeled.pairs[i].v),
                       labeled.labels[i]});
    }
    return out;
  };

  ExactPredictor exact;
  FeedStream(exact, split.train);
  double exact_auc = ComputeAuc(score_all(exact));

  auto sketch = MakePredictor({.kind = "minhash", .sketch_size = 128});
  ASSERT_TRUE(sketch.ok());
  FeedStream(**sketch, split.train);
  double sketch_auc = ComputeAuc(score_all(**sketch));

  // On a clustered graph Jaccard is a strong signal.
  EXPECT_GT(exact_auc, 0.8);
  EXPECT_GT(sketch_auc, exact_auc - 0.05);
}

TEST(Integration, RankAgreementBetweenSketchAndExact) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 84});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(7);
  auto pairs = SampleOverlappingPairs(csr, 300, rng);

  ExactPredictor exact;
  auto sketch = MakePredictor({.kind = "minhash", .sketch_size = 256});
  ASSERT_TRUE(sketch.ok());
  FeedStream(exact, g.edges);
  FeedStream(**sketch, g.edges);

  std::vector<double> exact_scores, sketch_scores;
  for (const QueryPair& p : pairs) {
    exact_scores.push_back(exact.Score(LinkMeasure::kAdamicAdar, p.u, p.v));
    sketch_scores.push_back(
        (*sketch)->Score(LinkMeasure::kAdamicAdar, p.u, p.v));
  }
  EXPECT_GT(SpearmanRho(exact_scores, sketch_scores), 0.85);
  EXPECT_GT(KendallTau(exact_scores, sketch_scores), 0.6);
}

TEST(Integration, DedupStreamProtectsDegreeCounters) {
  // A multigraph source would inflate exact degree counters; DedupEdgeStream
  // restores the simple-stream contract.
  EdgeList noisy = {{0, 1}, {0, 1}, {1, 0}, {0, 2}, {0, 2}};
  auto inner = std::make_unique<VectorEdgeStream>(noisy);
  DedupEdgeStream dedup(std::move(inner));

  auto p = MakePredictor({.kind = "minhash", .sketch_size = 32});
  ASSERT_TRUE(p.ok());
  Edge e;
  while (dedup.Next(&e)) (*p)->OnEdge(e);
  EXPECT_DOUBLE_EQ((*p)->EstimateOverlap(0, 1).degree_u, 2.0);
}

TEST(Integration, MemoryOrderingSketchBelowExactOnDenseGraph) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.1, 85});
  auto sketch = MakePredictor({.kind = "minhash", .sketch_size = 16});
  ASSERT_TRUE(sketch.ok());
  ExactPredictor exact;
  FeedStream(**sketch, g.edges);
  FeedStream(exact, g.edges);
  // At k=16 and average degree 16, sketch memory should be comparable or
  // lower; the decisive win shows at higher density (F5 sweeps it).
  EXPECT_LT((*sketch)->MemoryBytes(), exact.MemoryBytes() * 2);
}

}  // namespace
}  // namespace streamlink

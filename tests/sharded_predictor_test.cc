#include "core/sharded_predictor.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/predictor_factory.h"
#include "eval/experiment.h"
#include "util/random.h"

namespace streamlink {
namespace {

constexpr VertexId kNumVertices = 80;

/// A messy stream: duplicates, both orientations, and self-loops.
EdgeList MakeStream(uint64_t seed, size_t num_edges) {
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    edges.emplace_back(static_cast<VertexId>(rng.NextBounded(kNumVertices)),
                       static_cast<VertexId>(rng.NextBounded(kNumVertices)));
  }
  return edges;
}

/// Bit-identical, not approximately equal: sharding must be lossless.
void ExpectIdentical(const OverlapEstimate& a, const OverlapEstimate& b,
                     VertexId u, VertexId v, const std::string& kind) {
  EXPECT_EQ(a.jaccard, b.jaccard) << kind << " (" << u << "," << v << ")";
  EXPECT_EQ(a.intersection, b.intersection)
      << kind << " (" << u << "," << v << ")";
  EXPECT_EQ(a.union_size, b.union_size)
      << kind << " (" << u << "," << v << ")";
  EXPECT_EQ(a.adamic_adar, b.adamic_adar)
      << kind << " (" << u << "," << v << ")";
  EXPECT_EQ(a.resource_allocation, b.resource_allocation)
      << kind << " (" << u << "," << v << ")";
  EXPECT_EQ(a.degree_u, b.degree_u) << kind << " (" << u << "," << v << ")";
  EXPECT_EQ(a.degree_v, b.degree_v) << kind << " (" << u << "," << v << ")";
}

std::vector<PredictorConfig> ShardableConfigs() {
  std::vector<PredictorConfig> configs;
  for (const char* kind : {"minhash", "bottomk", "oph", "exact"}) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 32;
    config.seed = 7;
    configs.push_back(config);
  }
  // BottomK with KMV degree estimates exercises the sketched-degree path.
  PredictorConfig kmv;
  kmv.kind = "bottomk";
  kmv.sketch_size = 32;
  kmv.seed = 7;
  kmv.sketch_degrees = true;
  configs.push_back(kmv);
  return configs;
}

TEST(ShardedPredictor, BitIdenticalToSequentialAcrossKinds) {
  const EdgeList edges = MakeStream(/*seed=*/3, /*num_edges=*/600);
  for (const PredictorConfig& base : ShardableConfigs()) {
    auto sequential = MakePredictor(base);
    ASSERT_TRUE(sequential.ok());
    FeedStream(**sequential, edges);

    PredictorConfig parallel = base;
    parallel.threads = 3;
    auto sharded = MakePredictor(parallel);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    FeedStream(**sharded, edges);

    EXPECT_EQ((*sharded)->edges_processed(), (*sequential)->edges_processed());
    EXPECT_EQ((*sharded)->num_vertices(), (*sequential)->num_vertices());
    const std::string label = base.kind +
                              (base.sketch_degrees ? "+kmv" : "");
    // Every pair, including u == v and vertices past the stream's range.
    for (VertexId u = 0; u < kNumVertices + 5; u += 3) {
      for (VertexId v = 0; v < kNumVertices + 5; ++v) {
        ExpectIdentical((*sequential)->EstimateOverlap(u, v),
                        (*sharded)->EstimateOverlap(u, v), u, v, label);
      }
    }
  }
}

TEST(ShardedPredictor, SelfLoopsAreSkippedLikeSequential) {
  EdgeList edges = {{0, 0}, {0, 1}, {5, 5}, {1, 2}, {2, 2}};
  PredictorConfig config;
  config.kind = "minhash";
  config.threads = 2;
  auto sharded = MakePredictor(config);
  ASSERT_TRUE(sharded.ok());
  FeedStream(**sharded, edges);
  EXPECT_EQ((*sharded)->edges_processed(), 2u);

  config.threads = 1;
  auto sequential = MakePredictor(config);
  ASSERT_TRUE(sequential.ok());
  FeedStream(**sequential, edges);
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = 0; v < 8; ++v) {
      ExpectIdentical((*sequential)->EstimateOverlap(u, v),
                      (*sharded)->EstimateOverlap(u, v), u, v, "minhash");
    }
  }
}

TEST(ShardedPredictor, EmptyBuildAnswersQueries) {
  PredictorConfig config;
  config.kind = "bottomk";
  config.threads = 4;
  auto sharded = MakePredictor(config);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ((*sharded)->num_vertices(), 0u);
  EXPECT_EQ((*sharded)->edges_processed(), 0u);
  OverlapEstimate e = (*sharded)->EstimateOverlap(3, 9);
  EXPECT_EQ(e.jaccard, 0.0);
  EXPECT_EQ(e.intersection, 0.0);
}

TEST(ShardedPredictor, SingleShardDegenerateCaseWorks) {
  auto sharded = ShardedPredictor::Make(PredictorConfig{});
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ((*sharded)->num_shards(), 1u);
  FeedStream(**sharded, {{0, 1}, {1, 2}});
  EXPECT_EQ((*sharded)->edges_processed(), 2u);
}

TEST(ShardedPredictor, ExposesShardsAndOwnership) {
  PredictorConfig config;
  config.kind = "oph";
  config.threads = 3;
  auto sharded = ShardedPredictor::Make(config);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ((*sharded)->name(), "sharded:oph");
  EXPECT_EQ((*sharded)->kind(), "oph");
  EXPECT_EQ((*sharded)->num_shards(), 3u);
  for (VertexId u = 0; u < 9; ++u) {
    EXPECT_EQ((*sharded)->OwnerOf(u), u % 3);
  }
  EXPECT_EQ((*sharded)->shard(0).name(), "oph");
}

TEST(ShardedPredictor, MemoryIsAccountedAcrossShards) {
  PredictorConfig config;
  config.kind = "minhash";
  config.threads = 2;
  auto sharded = MakePredictor(config);
  ASSERT_TRUE(sharded.ok());
  FeedStream(**sharded, MakeStream(/*seed=*/5, /*num_edges=*/100));
  uint64_t total = (*sharded)->MemoryBytes();
  auto* as_sharded = dynamic_cast<ShardedPredictor*>(sharded->get());
  ASSERT_NE(as_sharded, nullptr);
  EXPECT_GE(total, as_sharded->shard(0).MemoryBytes() +
                       as_sharded->shard(1).MemoryBytes());
}

TEST(ShardedPredictor, RejectsUnshardableKinds) {
  for (const char* kind : {"vertex_biased", "windowed_minhash"}) {
    PredictorConfig config;
    config.kind = kind;
    config.threads = 4;
    auto sharded = ShardedPredictor::Make(config);
    ASSERT_FALSE(sharded.ok()) << kind;
    EXPECT_EQ(sharded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ShardedPredictor, RejectsZeroThreads) {
  PredictorConfig config;
  config.threads = 0;
  auto sharded = ShardedPredictor::Make(config);
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedPredictor, PropagatesShardConfigErrors) {
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 1;  // rejected by the per-shard factory
  config.threads = 2;
  auto sharded = ShardedPredictor::Make(config);
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace streamlink

#include "stream/parallel_ingest.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/predictor_factory.h"
#include "core/sharded_predictor.h"
#include "eval/experiment.h"
#include "stream/edge_stream.h"
#include "stream/stream_driver.h"
#include "util/flags.h"
#include "util/random.h"

namespace streamlink {
namespace {

constexpr VertexId kNumVertices = 80;

EdgeList MakeStream(uint64_t seed, size_t num_edges) {
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    edges.emplace_back(static_cast<VertexId>(rng.NextBounded(kNumVertices)),
                       static_cast<VertexId>(rng.NextBounded(kNumVertices)));
  }
  return edges;
}

void ExpectIdentical(const LinkPredictor& a, const LinkPredictor& b,
                     VertexId max_vertex) {
  for (VertexId u = 0; u < max_vertex; u += 2) {
    for (VertexId v = 0; v < max_vertex; ++v) {
      OverlapEstimate ea = a.EstimateOverlap(u, v);
      OverlapEstimate eb = b.EstimateOverlap(u, v);
      EXPECT_EQ(ea.jaccard, eb.jaccard) << "(" << u << "," << v << ")";
      EXPECT_EQ(ea.intersection, eb.intersection)
          << "(" << u << "," << v << ")";
      EXPECT_EQ(ea.adamic_adar, eb.adamic_adar)
          << "(" << u << "," << v << ")";
      EXPECT_EQ(ea.resource_allocation, eb.resource_allocation)
          << "(" << u << "," << v << ")";
    }
  }
}

TEST(ParallelIngestEngine, FourThreadsBitIdenticalToSequential) {
  const EdgeList edges = MakeStream(/*seed=*/11, /*num_edges=*/800);
  for (const char* kind : {"minhash", "bottomk", "oph", "exact"}) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 32;
    config.seed = 13;

    config.threads = 1;
    VectorEdgeStream sequential_stream(edges);
    auto sequential = IngestEngineBuilder(config).Ingest(sequential_stream);
    ASSERT_TRUE(sequential.ok()) << kind;

    VectorEdgeStream parallel_stream(edges);
    uint64_t ingested = 0;
    auto sharded = IngestEngineBuilder(config).Threads(4).Ingest(
        parallel_stream, &ingested);
    ASSERT_TRUE(sharded.ok()) << kind;

    EXPECT_EQ(ingested, edges.size()) << kind;
    EXPECT_EQ((*sharded)->edges_processed(),
              (*sequential)->edges_processed())
        << kind;
    EXPECT_EQ((*sharded)->num_vertices(), (*sequential)->num_vertices())
        << kind;
    ExpectIdentical(**sequential, **sharded, kNumVertices + 3);
  }
}

// The metamorphic cross product at the heart of the ordered contract:
// thread count and batch size are free parameters that must never change a
// single output bit. Small batch sizes force constant ring hand-off and
// epoch churn; large ones exercise the one-big-batch path.
TEST(ParallelIngestEngine, OrderedBitIdenticalAcrossThreadsAndBatchSizes) {
  const EdgeList edges = MakeStream(/*seed=*/29, /*num_edges=*/600);
  for (const char* kind : {"minhash", "bottomk"}) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 24;
    config.seed = 5;
    config.threads = 1;
    VectorEdgeStream reference_stream(edges);
    auto reference = IngestEngineBuilder(config).Ingest(reference_stream);
    ASSERT_TRUE(reference.ok()) << kind;

    for (uint32_t threads : {2u, 3u, 5u}) {
      for (uint32_t batch_edges : {1u, 7u, 4096u}) {
        VectorEdgeStream stream(edges);
        auto built = IngestEngineBuilder(config)
                         .Threads(threads)
                         .BatchEdges(batch_edges)
                         .Ingest(stream);
        ASSERT_TRUE(built.ok())
            << kind << " threads=" << threads << " batch=" << batch_edges;
        EXPECT_EQ((*built)->edges_processed(),
                  (*reference)->edges_processed())
            << kind << " threads=" << threads << " batch=" << batch_edges;
        ExpectIdentical(**reference, **built, kNumVertices);
      }
    }
  }
}

TEST(ParallelIngestEngine, TinyBatchesAndRingsStillLossless) {
  // Stress the backpressure path: 1-edge batches through capacity-1 rings
  // (rounded up to 2 slots) keep the router stalling on full rings.
  const EdgeList edges = MakeStream(/*seed=*/17, /*num_edges=*/300);
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 16;
  VectorEdgeStream stream(edges);
  auto sharded = IngestEngineBuilder(config)
                     .Threads(3)
                     .BatchEdges(1)
                     .RingBatches(1)
                     .Ingest(stream);
  ASSERT_TRUE(sharded.ok());

  config.threads = 1;
  auto sequential = MakePredictor(config);
  ASSERT_TRUE(sequential.ok());
  FeedStream(**sequential, edges);
  ExpectIdentical(**sequential, **sharded, kNumVertices);
}

// Relaxed mode merges disjoint edge partitions at end-of-stream. For the
// kinds that allow it (bottom-k set union, slot-wise minimum, additive
// exact degrees) the fold is value-lossless, so this test can compare
// exactly and stay deterministic — but the public contract only promises
// estimates within the differential oracle's tolerances (see
// verify/differential_test.cc for the contract-level check).
TEST(ParallelIngestEngine, RelaxedMatchesSequentialForMergeableKinds) {
  const EdgeList edges = MakeStream(/*seed=*/41, /*num_edges=*/700);
  for (const char* kind : {"minhash", "bottomk"}) {
    ASSERT_TRUE(KindSupportsReplicatedMerge(kind)) << kind;
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 32;
    config.seed = 99;
    config.threads = 1;
    VectorEdgeStream sequential_stream(edges);
    auto sequential = IngestEngineBuilder(config).Ingest(sequential_stream);
    ASSERT_TRUE(sequential.ok()) << kind;

    for (uint32_t threads : {2u, 4u}) {
      VectorEdgeStream stream(edges);
      uint64_t ingested = 0;
      // Small batches so every replica actually receives a partition —
      // at the default batch size this stream fits in one batch and the
      // fold's tally accumulation would go untested.
      auto relaxed = IngestEngineBuilder(config)
                         .Threads(threads)
                         .Ordering(IngestOrdering::kRelaxed)
                         .BatchEdges(64)
                         .Ingest(stream, &ingested);
      ASSERT_TRUE(relaxed.ok()) << kind << " threads=" << threads;
      EXPECT_EQ(ingested, edges.size());
      EXPECT_EQ((*relaxed)->edges_processed(),
                (*sequential)->edges_processed())
          << kind << " threads=" << threads;
      ExpectIdentical(**sequential, **relaxed, kNumVertices);
    }
  }
}

TEST(ParallelIngestEngine, RelaxedTinyBatchesAndRings) {
  const EdgeList edges = MakeStream(/*seed=*/43, /*num_edges=*/250);
  PredictorConfig config;
  config.kind = "bottomk";
  config.sketch_size = 16;
  config.threads = 1;
  VectorEdgeStream sequential_stream(edges);
  auto sequential = IngestEngineBuilder(config).Ingest(sequential_stream);
  ASSERT_TRUE(sequential.ok());

  VectorEdgeStream stream(edges);
  auto relaxed = IngestEngineBuilder(config)
                     .Threads(3)
                     .Ordering(IngestOrdering::kRelaxed)
                     .BatchEdges(2)
                     .RingBatches(1)
                     .Ingest(stream);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ((*relaxed)->edges_processed(), (*sequential)->edges_processed());
  ExpectIdentical(**sequential, **relaxed, kNumVertices);
}

TEST(ParallelIngestEngine, SingleThreadMatchesStreamDriverBuild) {
  const EdgeList edges = MakeStream(/*seed=*/23, /*num_edges=*/400);
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 32;
  config.threads = 1;
  ParallelIngestEngine engine(config);
  VectorEdgeStream engine_stream(edges);
  auto from_engine = engine.Build(engine_stream);
  ASSERT_TRUE(from_engine.ok());
  EXPECT_EQ(engine.edges_ingested(), edges.size());

  auto from_driver = MakePredictor(config);
  ASSERT_TRUE(from_driver.ok());
  VectorEdgeStream driver_stream(edges);
  StreamDriver driver;
  driver.AddConsumer(from_driver->get());
  driver.Run(driver_stream);

  EXPECT_EQ((*from_engine)->edges_processed(),
            (*from_driver)->edges_processed());
  ExpectIdentical(**from_driver, **from_engine, kNumVertices);
}

TEST(ParallelIngestEngine, EmptyStream) {
  PredictorConfig config;
  config.kind = "exact";
  config.threads = 4;
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(EdgeList{});
  auto built = engine.Build(stream);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(engine.edges_ingested(), 0u);
  EXPECT_EQ((*built)->edges_processed(), 0u);
  EXPECT_EQ((*built)->num_vertices(), 0u);
}

TEST(ParallelIngestEngine, SelfLoopOnlyStream) {
  PredictorConfig config;
  config.kind = "minhash";
  config.threads = 2;
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(EdgeList{{4, 4}, {7, 7}, {4, 4}});
  auto built = engine.Build(stream);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(engine.edges_ingested(), 3u);
  EXPECT_EQ((*built)->edges_processed(), 0u);
  OverlapEstimate e = (*built)->EstimateOverlap(4, 7);
  EXPECT_EQ(e.jaccard, 0.0);
}

TEST(ParallelIngestEngine, RejectsZeroThreads) {
  PredictorConfig config;
  config.threads = 0;
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(EdgeList{{0, 1}});
  auto built = engine.Build(stream);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelIngestEngine, RejectsUnshardableKindWhenParallel) {
  PredictorConfig config;
  config.kind = "vertex_biased";
  config.threads = 4;
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(EdgeList{{0, 1}});
  auto built = engine.Build(stream);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelIngestEngine, UnshardableKindWorksSequentially) {
  PredictorConfig config;
  config.kind = "vertex_biased";
  config.threads = 1;
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(EdgeList{{0, 1}, {1, 2}});
  auto built = engine.Build(stream);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ((*built)->edges_processed(), 2u);
}

TEST(ParallelIngestEngine, RelaxedRejectsNonMergeableKindWhenParallel) {
  PredictorConfig config;
  config.kind = "oph";  // shards fine, but has no lossless replica merge
  config.threads = 4;
  VectorEdgeStream stream(EdgeList{{0, 1}});
  auto built = IngestEngineBuilder(config)
                   .Ordering(IngestOrdering::kRelaxed)
                   .Ingest(stream);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelIngestEngine, RelaxedRejectsPublishCadence) {
  PredictorConfig config;
  config.kind = "minhash";
  config.threads = 4;
  VectorEdgeStream stream(EdgeList{{0, 1}});
  auto built = IngestEngineBuilder(config)
                   .Ordering(IngestOrdering::kRelaxed)
                   .PublishEveryEdges(10)
                   .OnPublish([](const LinkPredictor&, uint64_t) {})
                   .Ingest(stream);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelIngestEngine, RejectsCadenceWithoutCallback) {
  PredictorConfig config;
  config.kind = "minhash";
  config.threads = 2;
  VectorEdgeStream stream(EdgeList{{0, 1}});
  auto built =
      IngestEngineBuilder(config).PublishEveryEdges(10).Ingest(stream);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(IngestOrdering, NamesRoundTrip) {
  for (IngestOrdering ordering :
       {IngestOrdering::kOrdered, IngestOrdering::kRelaxed}) {
    auto parsed = ParseIngestOrdering(IngestOrderingName(ordering));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, ordering);
  }
  EXPECT_FALSE(ParseIngestOrdering("chaotic").ok());
}

TEST(IngestEngineBuilder, ApplyFlagsMapsSharedIngestFlags) {
  FlagParser flags(std::vector<std::string>{"--ingest-mode", "relaxed",
                                            "--batch-edges", "123",
                                            "--ring-batches", "9"});
  IngestEngineBuilder builder;
  ASSERT_TRUE(builder.ApplyFlags(flags).ok());
  EXPECT_EQ(builder.options().ordering, IngestOrdering::kRelaxed);
  EXPECT_EQ(builder.options().batch_edges, 123u);
  EXPECT_EQ(builder.options().ring_batches, 9u);
}

TEST(IngestEngineBuilder, ApplyFlagsKeepsDefaultsWhenAbsent) {
  FlagParser flags(std::vector<std::string>{});
  IngestEngineBuilder builder;
  const ParallelIngestOptions defaults;
  ASSERT_TRUE(builder.ApplyFlags(flags).ok());
  EXPECT_EQ(builder.options().ordering, defaults.ordering);
  EXPECT_EQ(builder.options().batch_edges, defaults.batch_edges);
  EXPECT_EQ(builder.options().ring_batches, defaults.ring_batches);
}

TEST(IngestEngineBuilder, ApplyFlagsRejectsUnknownMode) {
  FlagParser flags(std::vector<std::string>{"--ingest-mode", "fast"});
  IngestEngineBuilder builder;
  Status st = builder.ApplyFlags(flags);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace streamlink

#include "stream/parallel_ingest.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/predictor_factory.h"
#include "core/sharded_predictor.h"
#include "eval/experiment.h"
#include "stream/edge_stream.h"
#include "stream/stream_driver.h"
#include "util/random.h"

namespace streamlink {
namespace {

constexpr VertexId kNumVertices = 80;

EdgeList MakeStream(uint64_t seed, size_t num_edges) {
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    edges.emplace_back(static_cast<VertexId>(rng.NextBounded(kNumVertices)),
                       static_cast<VertexId>(rng.NextBounded(kNumVertices)));
  }
  return edges;
}

void ExpectIdentical(const LinkPredictor& a, const LinkPredictor& b,
                     VertexId max_vertex) {
  for (VertexId u = 0; u < max_vertex; u += 2) {
    for (VertexId v = 0; v < max_vertex; ++v) {
      OverlapEstimate ea = a.EstimateOverlap(u, v);
      OverlapEstimate eb = b.EstimateOverlap(u, v);
      EXPECT_EQ(ea.jaccard, eb.jaccard) << "(" << u << "," << v << ")";
      EXPECT_EQ(ea.intersection, eb.intersection)
          << "(" << u << "," << v << ")";
      EXPECT_EQ(ea.adamic_adar, eb.adamic_adar)
          << "(" << u << "," << v << ")";
      EXPECT_EQ(ea.resource_allocation, eb.resource_allocation)
          << "(" << u << "," << v << ")";
    }
  }
}

TEST(BoundedBatchQueue, DeliversBatchesInOrder) {
  BoundedBatchQueue queue(4);
  queue.Push({{0, 1}});
  queue.Push({{1, 2}, {2, 3}});
  queue.Close();
  EdgeList batch;
  ASSERT_TRUE(queue.Pop(&batch));
  EXPECT_EQ(batch, EdgeList({{0, 1}}));
  ASSERT_TRUE(queue.Pop(&batch));
  EXPECT_EQ(batch, EdgeList({{1, 2}, {2, 3}}));
  EXPECT_FALSE(queue.Pop(&batch));
}

TEST(BoundedBatchQueue, PopAfterCloseDrainsThenStops) {
  BoundedBatchQueue queue(2);
  queue.Push({{0, 1}});
  queue.Close();
  EdgeList batch;
  EXPECT_TRUE(queue.Pop(&batch));
  EXPECT_FALSE(queue.Pop(&batch));
  EXPECT_FALSE(queue.Pop(&batch));  // stays closed
}

TEST(BoundedBatchQueue, BlocksProducerAtCapacity) {
  BoundedBatchQueue queue(1);
  queue.Push({{0, 1}});
  std::atomic<bool> second_push_done{false};
  std::thread producer([&] {
    queue.Push({{1, 2}});  // must block until the consumer pops
    second_push_done = true;
  });
  // Give the producer a moment to hit the capacity wall.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_push_done.load());
  EdgeList batch;
  ASSERT_TRUE(queue.Pop(&batch));
  EXPECT_EQ(batch, EdgeList({{0, 1}}));
  producer.join();
  EXPECT_TRUE(second_push_done.load());
  queue.Close();
  ASSERT_TRUE(queue.Pop(&batch));
  EXPECT_EQ(batch, EdgeList({{1, 2}}));
  EXPECT_FALSE(queue.Pop(&batch));
}

TEST(BoundedBatchQueue, ManyBatchesThroughTinyCapacity) {
  BoundedBatchQueue queue(2);
  constexpr int kBatches = 500;
  std::thread producer([&] {
    for (int i = 0; i < kBatches; ++i) {
      queue.Push({Edge(static_cast<VertexId>(i),
                       static_cast<VertexId>(i + 1))});
    }
    queue.Close();
  });
  EdgeList batch;
  int received = 0;
  while (queue.Pop(&batch)) {
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].u, static_cast<VertexId>(received));
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kBatches);
}

TEST(ParallelIngestEngine, FourThreadsBitIdenticalToSequential) {
  const EdgeList edges = MakeStream(/*seed=*/11, /*num_edges=*/800);
  for (const char* kind : {"minhash", "bottomk", "oph", "exact"}) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 32;
    config.seed = 13;

    config.threads = 1;
    ParallelIngestEngine sequential_engine(config);
    VectorEdgeStream sequential_stream(edges);
    auto sequential = sequential_engine.Build(sequential_stream);
    ASSERT_TRUE(sequential.ok()) << kind;

    config.threads = 4;
    ParallelIngestEngine parallel_engine(config);
    VectorEdgeStream parallel_stream(edges);
    auto sharded = parallel_engine.Build(parallel_stream);
    ASSERT_TRUE(sharded.ok()) << kind;

    EXPECT_EQ(parallel_engine.edges_ingested(), edges.size()) << kind;
    EXPECT_EQ((*sharded)->edges_processed(),
              (*sequential)->edges_processed())
        << kind;
    EXPECT_EQ((*sharded)->num_vertices(), (*sequential)->num_vertices())
        << kind;
    ExpectIdentical(**sequential, **sharded, kNumVertices + 3);
  }
}

TEST(ParallelIngestEngine, TinyBatchesAndQueuesStillLossless) {
  // Stress the backpressure path: 1-edge batches through depth-1 queues.
  const EdgeList edges = MakeStream(/*seed=*/17, /*num_edges=*/300);
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 16;
  config.threads = 3;
  ParallelIngestOptions options;
  options.batch_edges = 1;
  options.max_inflight_batches = 1;
  ParallelIngestEngine engine(config, options);
  VectorEdgeStream stream(edges);
  auto sharded = engine.Build(stream);
  ASSERT_TRUE(sharded.ok());

  config.threads = 1;
  auto sequential = MakePredictor(config);
  ASSERT_TRUE(sequential.ok());
  FeedStream(**sequential, edges);
  ExpectIdentical(**sequential, **sharded, kNumVertices);
}

TEST(ParallelIngestEngine, SingleThreadMatchesStreamDriverBuild) {
  const EdgeList edges = MakeStream(/*seed=*/23, /*num_edges=*/400);
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 32;
  config.threads = 1;
  ParallelIngestEngine engine(config);
  VectorEdgeStream engine_stream(edges);
  auto from_engine = engine.Build(engine_stream);
  ASSERT_TRUE(from_engine.ok());
  EXPECT_EQ(engine.edges_ingested(), edges.size());

  auto from_driver = MakePredictor(config);
  ASSERT_TRUE(from_driver.ok());
  VectorEdgeStream driver_stream(edges);
  StreamDriver driver;
  driver.AddConsumer(from_driver->get());
  driver.Run(driver_stream);

  EXPECT_EQ((*from_engine)->edges_processed(),
            (*from_driver)->edges_processed());
  ExpectIdentical(**from_driver, **from_engine, kNumVertices);
}

TEST(ParallelIngestEngine, EmptyStream) {
  PredictorConfig config;
  config.kind = "exact";
  config.threads = 4;
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(EdgeList{});
  auto built = engine.Build(stream);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(engine.edges_ingested(), 0u);
  EXPECT_EQ((*built)->edges_processed(), 0u);
  EXPECT_EQ((*built)->num_vertices(), 0u);
}

TEST(ParallelIngestEngine, SelfLoopOnlyStream) {
  PredictorConfig config;
  config.kind = "minhash";
  config.threads = 2;
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(EdgeList{{4, 4}, {7, 7}, {4, 4}});
  auto built = engine.Build(stream);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(engine.edges_ingested(), 3u);
  EXPECT_EQ((*built)->edges_processed(), 0u);
  OverlapEstimate e = (*built)->EstimateOverlap(4, 7);
  EXPECT_EQ(e.jaccard, 0.0);
}

TEST(ParallelIngestEngine, RejectsZeroThreads) {
  PredictorConfig config;
  config.threads = 0;
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(EdgeList{{0, 1}});
  auto built = engine.Build(stream);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelIngestEngine, RejectsUnshardableKindWhenParallel) {
  PredictorConfig config;
  config.kind = "vertex_biased";
  config.threads = 4;
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(EdgeList{{0, 1}});
  auto built = engine.Build(stream);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelIngestEngine, UnshardableKindWorksSequentially) {
  PredictorConfig config;
  config.kind = "vertex_biased";
  config.threads = 1;
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(EdgeList{{0, 1}, {1, 2}});
  auto built = engine.Build(stream);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ((*built)->edges_processed(), 2u);
}

}  // namespace
}  // namespace streamlink

// Cross-cutting property tests: invariants that must hold for EVERY
// predictor kind on randomized inputs across seeds, plus statistical
// calibration of the analytic error bounds.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error_bounds.h"
#include "core/exact_predictor.h"
#include "core/predictor_factory.h"
#include "eval/experiment.h"
#include "gen/pair_sampler.h"
#include "gen/stream_order.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "graph/edge_list_io.h"
#include "util/random.h"

namespace streamlink {
namespace {

/// (seed, predictor kind) sweep.
class PredictorInvariants
    : public ::testing::TestWithParam<std::tuple<uint64_t, std::string>> {};

TEST_P(PredictorInvariants, EstimatesAreWellFormedAndSymmetric) {
  const auto& [seed, kind] = GetParam();
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"rmat", 0.03, seed});
  auto predictor = MakePredictor(
      {.kind = kind, .sketch_size = 32, .seed = seed * 13 + 1});
  ASSERT_TRUE(predictor.ok());
  FeedStream(**predictor, g.edges);

  Rng rng(seed);
  for (int i = 0; i < 100; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    OverlapEstimate e = (*predictor)->EstimateOverlap(u, v);
    OverlapEstimate r = (*predictor)->EstimateOverlap(v, u);

    // Well-formedness.
    EXPECT_GE(e.jaccard, 0.0);
    EXPECT_LE(e.jaccard, 1.0);
    EXPECT_GE(e.intersection, 0.0);
    EXPECT_GE(e.union_size, 0.0);
    EXPECT_GE(e.adamic_adar, 0.0);
    EXPECT_GE(e.resource_allocation, 0.0);
    EXPECT_FALSE(std::isnan(e.jaccard));
    EXPECT_FALSE(std::isnan(e.adamic_adar));
    // Intersection cannot exceed union.
    EXPECT_LE(e.intersection, e.union_size + 1e-9);

    // Symmetry (undirected measures).
    EXPECT_DOUBLE_EQ(e.jaccard, r.jaccard);
    EXPECT_DOUBLE_EQ(e.intersection, r.intersection);
    EXPECT_DOUBLE_EQ(e.adamic_adar, r.adamic_adar);
    EXPECT_DOUBLE_EQ(e.degree_u, r.degree_v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndKinds, PredictorInvariants,
    ::testing::Combine(::testing::Values(1ull, 7ull, 23ull),
                       ::testing::Values("minhash", "bottomk",
                                         "vertex_biased", "oph",
                                         "windowed_minhash", "exact")));

/// Self-similarity: a vertex compared with itself has Jaccard 1 (once it
/// has any neighbor), for every sketch kind.
class SelfSimilarity : public ::testing::TestWithParam<std::string> {};

TEST_P(SelfSimilarity, SelfJaccardIsOne) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"er", 0.02, 5});
  auto predictor = MakePredictor({.kind = GetParam(), .sketch_size = 16});
  ASSERT_TRUE(predictor.ok());
  FeedStream(**predictor, g.edges);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    OverlapEstimate e = (*predictor)->EstimateOverlap(u, u);
    if (e.degree_u > 0) {
      EXPECT_DOUBLE_EQ(e.jaccard, 1.0) << GetParam() << " vertex " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SelfSimilarity,
                         ::testing::Values("minhash", "bottomk", "oph",
                                           "exact"));

/// Statistical calibration: the Hoeffding bound from error_bounds.h must
/// hold empirically — at least 1−δ of query pairs fall within ε(k, δ) of
/// the exact Jaccard.
TEST(Calibration, HoeffdingCoverageHoldsEmpirically) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 31});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(2);
  auto pairs = SampleOverlappingPairs(csr, 800, rng);

  ExactPredictor exact;
  FeedStream(exact, g.edges);

  for (uint32_t k : {32u, 128u}) {
    auto sketch = MakePredictor({.kind = "minhash", .sketch_size = k});
    ASSERT_TRUE(sketch.ok());
    FeedStream(**sketch, g.edges);

    const double delta = 0.05;
    const double epsilon = MinHashJaccardErrorAt(k, delta);
    int covered = 0;
    for (const QueryPair& p : pairs) {
      double truth = exact.EstimateOverlap(p.u, p.v).jaccard;
      double est = (*sketch)->EstimateOverlap(p.u, p.v).jaccard;
      if (std::abs(est - truth) <= epsilon) ++covered;
    }
    double coverage = static_cast<double>(covered) / pairs.size();
    // Hoeffding is conservative: real coverage should comfortably exceed
    // the nominal 1 − δ.
    EXPECT_GE(coverage, 1.0 - delta) << "k=" << k;
  }
}

/// The required-sketch-size calculator delivers the accuracy it promises.
TEST(Calibration, SketchSizeForDeliversTargetError) {
  const double epsilon = 0.08, delta = 0.05;
  const uint32_t k = MinHashSketchSizeFor(epsilon, delta);

  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.04, 33});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(3);
  auto pairs = SampleOverlappingPairs(csr, 500, rng);

  ExactPredictor exact;
  FeedStream(exact, g.edges);
  auto sketch = MakePredictor({.kind = "minhash", .sketch_size = k});
  ASSERT_TRUE(sketch.ok());
  FeedStream(**sketch, g.edges);

  int violations = 0;
  for (const QueryPair& p : pairs) {
    double truth = exact.EstimateOverlap(p.u, p.v).jaccard;
    double est = (*sketch)->EstimateOverlap(p.u, p.v).jaccard;
    if (std::abs(est - truth) > epsilon) ++violations;
  }
  EXPECT_LE(violations, static_cast<int>(pairs.size() * delta));
}

/// Stream-order robustness: for order-sensitive machinery (vertex-biased
/// weights, windowed buckets), different arrival orders must still give
/// comparable aggregate accuracy (not identical estimates).
TEST(Property, AccuracyIsOrderRobust) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"sbm", 0.04, 35});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(4);
  auto pairs = SampleOverlappingPairs(csr, 300, rng);

  double errors[2];
  int index = 0;
  for (StreamOrder order : {StreamOrder::kGenerated, StreamOrder::kRandom}) {
    EdgeList edges = g.edges;
    Rng order_rng(11);
    ApplyStreamOrder(order, edges, order_rng);
    GeneratedGraph variant{g.name, edges, g.num_vertices};
    AccuracyReport report = MeasureAccuracy(
        variant, {.kind = "vertex_biased", .sketch_size = 128}, pairs);
    errors[index++] = report.adamic_adar.MeanRelativeError();
  }
  EXPECT_LT(errors[0], 0.6);
  EXPECT_LT(errors[1], 0.6);
  EXPECT_NEAR(errors[0], errors[1], 0.25);
}

/// Fuzz-ish robustness: random bytes fed to the edge-list parser must
/// produce a Status, never a crash, and never a bogus success with
/// malformed numeric lines.
TEST(Property, EdgeListParserSurvivesGarbage) {
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    int length = static_cast<int>(rng.NextBounded(120));
    for (int i = 0; i < length; ++i) {
      text += static_cast<char>(rng.NextBounded(96) + 32);
      if (rng.NextBernoulli(0.1)) text += '\n';
    }
    auto result = ParseEdgeList(text);
    if (result.ok()) {
      // Whatever parsed must be structurally sound.
      for (const Edge& e : result->edges) {
        EXPECT_LT(e.u, result->num_vertices);
        EXPECT_LT(e.v, result->num_vertices);
      }
    }
  }
}

}  // namespace
}  // namespace streamlink

#include "sketch/bottomk.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "util/hashing.h"
#include "util/random.h"

namespace streamlink {
namespace {

constexpr uint64_t kSeed = 0xb0770;

BottomKSketch SketchOf(const std::vector<uint64_t>& items, uint32_t k) {
  BottomKSketch s(k);
  for (uint64_t x : items) s.Update(HashU64(x, kSeed), x);
  return s;
}

std::vector<uint64_t> RandomItems(int n, Rng& rng) {
  std::vector<uint64_t> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(rng.Next());
  return out;
}

TEST(BottomKSketch, StartsEmpty) {
  BottomKSketch s(4);
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_FALSE(s.IsSaturated());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.Threshold(), ~0ULL);
  EXPECT_DOUBLE_EQ(s.EstimateCardinality(), 0.0);
}

TEST(BottomKSketchDeathTest, ZeroKAborts) {
  EXPECT_DEATH(BottomKSketch(0), "k >= 1");
}

TEST(BottomKSketch, ExactWhileUnsaturated) {
  BottomKSketch s = SketchOf({1, 2, 3}, 8);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.IsSaturated());
  EXPECT_DOUBLE_EQ(s.EstimateCardinality(), 3.0);
}

TEST(BottomKSketch, DuplicatesAreIgnored) {
  BottomKSketch s = SketchOf({5, 5, 5, 6, 6}, 8);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.EstimateCardinality(), 2.0);
}

TEST(BottomKSketch, KeepsOnlySmallestK) {
  BottomKSketch s = SketchOf(
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.IsSaturated());
  // Entries are the 4 smallest hashes, sorted ascending.
  for (uint32_t i = 1; i < 4; ++i) {
    EXPECT_LT(s.entries()[i - 1].hash, s.entries()[i].hash);
  }
  EXPECT_EQ(s.Threshold(), s.entries().back().hash);
}

TEST(BottomKSketch, UpdateReturnsWhetherChanged) {
  BottomKSketch s(2);
  EXPECT_TRUE(s.Update(100, 1));
  EXPECT_TRUE(s.Update(50, 2));
  EXPECT_FALSE(s.Update(100, 1));   // duplicate hash
  EXPECT_FALSE(s.Update(200, 3));   // above threshold when saturated
  EXPECT_TRUE(s.Update(10, 4));     // below threshold
}

TEST(BottomKSketch, OrderIndependence) {
  std::vector<uint64_t> items = {10, 20, 30, 40, 50, 60, 70};
  BottomKSketch a = SketchOf(items, 4);
  std::vector<uint64_t> reversed(items.rbegin(), items.rend());
  BottomKSketch b = SketchOf(reversed, 4);
  ASSERT_EQ(a.size(), b.size());
  for (uint32_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i], b.entries()[i]);
  }
}

TEST(BottomKSketch, CardinalityEstimateIsAccurate) {
  Rng rng(77);
  const uint32_t k = 256;
  for (int n : {1000, 10000, 100000}) {
    BottomKSketch s = SketchOf(RandomItems(n, rng), k);
    double est = s.EstimateCardinality();
    // Relative std error ≈ 1/sqrt(k-2) ≈ 6.3%; allow 5 sigma.
    EXPECT_NEAR(est, n, 5.0 * n / std::sqrt(k - 2.0)) << "n=" << n;
  }
}

TEST(BottomKSketch, MergeUnionEqualsSketchOfUnion) {
  std::vector<uint64_t> av = {1, 2, 3, 4, 5, 6};
  std::vector<uint64_t> bv = {4, 5, 6, 7, 8, 9};
  BottomKSketch a = SketchOf(av, 4);
  BottomKSketch b = SketchOf(bv, 4);
  std::vector<uint64_t> uv = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  BottomKSketch expected = SketchOf(uv, 4);
  a.MergeUnion(b);
  ASSERT_EQ(a.size(), expected.size());
  for (uint32_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i], expected.entries()[i]);
  }
}

TEST(BottomKSketchDeathTest, MergeDifferentKAborts) {
  BottomKSketch a(4), b(8);
  EXPECT_DEATH(a.MergeUnion(b), "different k");
}

TEST(BottomKSketch, PairEstimateOnIdenticalSets) {
  std::vector<uint64_t> items = {1, 2, 3, 4, 5};
  BottomKSketch a = SketchOf(items, 16);
  BottomKSketch b = SketchOf(items, 16);
  auto est = BottomKSketch::EstimatePair(a, b);
  EXPECT_DOUBLE_EQ(est.jaccard, 1.0);
  EXPECT_DOUBLE_EQ(est.union_cardinality, 5.0);
  EXPECT_DOUBLE_EQ(est.intersection_cardinality, 5.0);
}

TEST(BottomKSketch, PairEstimateOnDisjointSmallSets) {
  BottomKSketch a = SketchOf({1, 2, 3}, 16);
  BottomKSketch b = SketchOf({4, 5, 6}, 16);
  auto est = BottomKSketch::EstimatePair(a, b);
  EXPECT_DOUBLE_EQ(est.jaccard, 0.0);
  EXPECT_DOUBLE_EQ(est.union_cardinality, 6.0);
  EXPECT_DOUBLE_EQ(est.intersection_cardinality, 0.0);
}

TEST(BottomKSketch, PairEstimateEmptySketches) {
  BottomKSketch a(4), b(4);
  auto est = BottomKSketch::EstimatePair(a, b);
  EXPECT_DOUBLE_EQ(est.jaccard, 0.0);
  EXPECT_DOUBLE_EQ(est.union_cardinality, 0.0);
}

/// Property sweep: pairwise Jaccard and union estimates concentrate with k.
class BottomKAccuracy : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BottomKAccuracy, PairEstimatesConcentrate) {
  const uint32_t k = GetParam();
  Rng rng(k * 7 + 1);
  const int size = 2000;
  for (double overlap : {0.2, 0.8}) {
    int shared = static_cast<int>(overlap * size);
    std::vector<uint64_t> av, bv;
    for (int i = 0; i < shared; ++i) {
      uint64_t x = rng.Next();
      av.push_back(x);
      bv.push_back(x);
    }
    for (int i = shared; i < size; ++i) {
      av.push_back(rng.Next());
      bv.push_back(rng.Next());
    }
    BottomKSketch a = SketchOf(av, k);
    BottomKSketch b = SketchOf(bv, k);
    auto est = BottomKSketch::EstimatePair(a, b);

    double true_union = 2.0 * size - shared;
    double true_jaccard = shared / true_union;
    double eps_j = 5.0 / std::sqrt(static_cast<double>(k));
    EXPECT_NEAR(est.jaccard, true_jaccard, eps_j) << "k=" << k;
    EXPECT_NEAR(est.union_cardinality, true_union,
                5.0 * true_union / std::sqrt(k - 2.0))
        << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(SketchSizes, BottomKAccuracy,
                         ::testing::Values(64u, 256u, 1024u));

}  // namespace
}  // namespace streamlink

#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace streamlink {
namespace {

TEST(Auc, PerfectRankingIsOne) {
  std::vector<LabeledScore> ex = {
      {0.9, true}, {0.8, true}, {0.2, false}, {0.1, false}};
  EXPECT_DOUBLE_EQ(ComputeAuc(ex), 1.0);
}

TEST(Auc, InvertedRankingIsZero) {
  std::vector<LabeledScore> ex = {
      {0.9, false}, {0.8, false}, {0.2, true}, {0.1, true}};
  EXPECT_DOUBLE_EQ(ComputeAuc(ex), 0.0);
}

TEST(Auc, AllTiedIsHalf) {
  std::vector<LabeledScore> ex = {
      {0.5, true}, {0.5, false}, {0.5, true}, {0.5, false}};
  EXPECT_DOUBLE_EQ(ComputeAuc(ex), 0.5);
}

TEST(Auc, SingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(ComputeAuc({{0.4, true}, {0.6, true}}), 0.5);
  EXPECT_DOUBLE_EQ(ComputeAuc({{0.4, false}}), 0.5);
  EXPECT_DOUBLE_EQ(ComputeAuc({}), 0.5);
}

TEST(Auc, HandComputedMixedCase) {
  // Scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8 vs 0.6) win, (0.8 vs 0.2) win, (0.4 vs 0.6) loss,
  // (0.4 vs 0.2) win → 3/4.
  std::vector<LabeledScore> ex = {
      {0.8, true}, {0.4, true}, {0.6, false}, {0.2, false}};
  EXPECT_DOUBLE_EQ(ComputeAuc(ex), 0.75);
}

TEST(Auc, MidrankTieHandling) {
  // pos 0.5, neg 0.5 → that comparison counts 1/2.
  std::vector<LabeledScore> ex = {{0.5, true}, {0.5, false}, {0.1, false}};
  // Pairs: (0.5 pos vs 0.5 neg) = 0.5; (0.5 pos vs 0.1 neg) = 1 → 1.5/2.
  EXPECT_DOUBLE_EQ(ComputeAuc(ex), 0.75);
}

TEST(PrecisionAtK, CountsHitsInTopK) {
  std::vector<LabeledScore> ex = {
      {0.9, true}, {0.8, false}, {0.7, true}, {0.1, false}};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ex, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ex, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ex, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ex, 4), 0.5);
}

TEST(PrecisionAtK, KBeyondSizeClamps) {
  std::vector<LabeledScore> ex = {{0.9, true}};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ex, 100), 1.0);
}

TEST(PrecisionAtK, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, 5), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({{0.5, true}}, 0), 0.0);
}

TEST(RecallAtK, FractionOfPositivesRetrieved) {
  std::vector<LabeledScore> ex = {
      {0.9, true}, {0.8, false}, {0.7, true}, {0.1, true}};
  EXPECT_DOUBLE_EQ(RecallAtK(ex, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ex, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ex, 4), 1.0);
}

TEST(RecallAtK, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(RecallAtK({{0.5, false}}, 1), 0.0);
}

TEST(AveragePrecisionFn, PerfectRankingIsOne) {
  std::vector<LabeledScore> ex = {
      {0.9, true}, {0.8, true}, {0.2, false}};
  EXPECT_DOUBLE_EQ(AveragePrecision(ex), 1.0);
}

TEST(AveragePrecisionFn, HandComputed) {
  // Ranked: pos, neg, pos → AP = (1/1 + 2/3) / 2 = 5/6.
  std::vector<LabeledScore> ex = {
      {0.9, true}, {0.8, false}, {0.7, true}};
  EXPECT_DOUBLE_EQ(AveragePrecision(ex), 5.0 / 6.0);
}

TEST(AveragePrecisionFn, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({{0.3, false}}), 0.0);
}

}  // namespace
}  // namespace streamlink

#include "sketch/minhash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "util/hashing.h"
#include "util/random.h"

namespace streamlink {
namespace {

MinHashSketch SketchOf(const std::vector<uint64_t>& items,
                       const HashFamily& family) {
  MinHashSketch s(family.size());
  for (uint64_t x : items) s.Update(x, family);
  return s;
}

double ExactJaccard(const std::set<uint64_t>& a, const std::set<uint64_t>& b) {
  size_t inter = 0;
  for (uint64_t x : a) inter += b.count(x);
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

TEST(MinHashSketch, StartsEmpty) {
  MinHashSketch s(8);
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.num_slots(), 8u);
}

TEST(MinHashSketch, NonEmptyAfterUpdate) {
  HashFamily family(1, 8);
  MinHashSketch s(8);
  s.Update(42, family);
  EXPECT_FALSE(s.IsEmpty());
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s.slot(i).item, 42u);
    EXPECT_EQ(s.slot(i).hash, family.Hash(i, 42));
  }
}

TEST(MinHashSketch, UpdateIsIdempotent) {
  HashFamily family(2, 16);
  MinHashSketch a = SketchOf({1, 2, 3}, family);
  MinHashSketch b = SketchOf({1, 2, 3, 2, 1, 3, 3}, family);
  for (uint32_t i = 0; i < 16; ++i) EXPECT_EQ(a.slot(i), b.slot(i));
}

TEST(MinHashSketch, UpdateIsOrderIndependent) {
  HashFamily family(3, 16);
  MinHashSketch a = SketchOf({1, 2, 3, 4, 5}, family);
  MinHashSketch b = SketchOf({5, 3, 1, 4, 2}, family);
  for (uint32_t i = 0; i < 16; ++i) EXPECT_EQ(a.slot(i), b.slot(i));
}

TEST(MinHashSketch, SlotsHoldSetMinima) {
  HashFamily family(4, 4);
  std::vector<uint64_t> items = {10, 20, 30, 40, 50};
  MinHashSketch s = SketchOf(items, family);
  for (uint32_t i = 0; i < 4; ++i) {
    uint64_t expected_min = ~0ULL;
    uint64_t expected_arg = 0;
    for (uint64_t x : items) {
      uint64_t h = family.Hash(i, x);
      if (h < expected_min) {
        expected_min = h;
        expected_arg = x;
      }
    }
    EXPECT_EQ(s.slot(i).hash, expected_min);
    EXPECT_EQ(s.slot(i).item, expected_arg);
  }
}

TEST(MinHashSketch, IdenticalSetsMatchPerfectly) {
  HashFamily family(5, 32);
  MinHashSketch a = SketchOf({7, 8, 9}, family);
  MinHashSketch b = SketchOf({9, 7, 8}, family);
  EXPECT_EQ(MinHashSketch::CountMatches(a, b), 32u);
  EXPECT_DOUBLE_EQ(MinHashSketch::EstimateJaccard(a, b), 1.0);
}

TEST(MinHashSketch, DisjointSetsRarelyMatch) {
  HashFamily family(6, 64);
  MinHashSketch a = SketchOf({1, 2, 3, 4, 5}, family);
  MinHashSketch b = SketchOf({100, 200, 300, 400, 500}, family);
  // True Jaccard is 0; estimator is unbiased, matches only via hash ties.
  EXPECT_LE(MinHashSketch::EstimateJaccard(a, b), 0.05);
}

TEST(MinHashSketch, EmptySketchEstimatesZero) {
  HashFamily family(7, 8);
  MinHashSketch a(8);
  MinHashSketch b = SketchOf({1}, family);
  EXPECT_DOUBLE_EQ(MinHashSketch::EstimateJaccard(a, b), 0.0);
  EXPECT_DOUBLE_EQ(MinHashSketch::EstimateJaccard(a, a), 0.0);
}

TEST(MinHashSketch, EmptySlotsDoNotCountAsMatches) {
  MinHashSketch a(8), b(8);
  EXPECT_EQ(MinHashSketch::CountMatches(a, b), 0u);
}

TEST(MinHashSketch, MergeUnionEqualsSketchOfUnion) {
  HashFamily family(8, 32);
  MinHashSketch a = SketchOf({1, 2, 3}, family);
  MinHashSketch b = SketchOf({3, 4, 5}, family);
  MinHashSketch expected = SketchOf({1, 2, 3, 4, 5}, family);
  a.MergeUnion(b);
  for (uint32_t i = 0; i < 32; ++i) EXPECT_EQ(a.slot(i), expected.slot(i));
}

TEST(MinHashSketch, MergeWithEmptyIsIdentity) {
  HashFamily family(9, 16);
  MinHashSketch a = SketchOf({1, 2}, family);
  MinHashSketch before = a;
  MinHashSketch empty(16);
  a.MergeUnion(empty);
  for (uint32_t i = 0; i < 16; ++i) EXPECT_EQ(a.slot(i), before.slot(i));
}

TEST(MinHashSketchDeathTest, MismatchedWidthsAbort) {
  MinHashSketch a(8), b(16);
  EXPECT_DEATH(MinHashSketch::CountMatches(a, b), "different widths");
  EXPECT_DEATH(a.MergeUnion(b), "different widths");
}

TEST(MinHashSketch, MemoryScalesWithSlots) {
  MinHashSketch small(8), large(256);
  EXPECT_LT(small.MemoryBytes(), large.MemoryBytes());
  EXPECT_GE(large.MemoryBytes(), 256 * sizeof(MinHashSketch::Slot));
}

/// Property sweep: the Jaccard estimator concentrates as k grows, staying
/// within the Hoeffding envelope (with slack) across overlap levels.
class MinHashAccuracy : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MinHashAccuracy, EstimateWithinHoeffdingEnvelope) {
  const uint32_t k = GetParam();
  HashFamily family(0xfeedULL + k, k);
  Rng rng(k);

  for (double overlap : {0.1, 0.5, 0.9}) {
    // Build two sets of size 200 with |A ∩ B| = overlap-controlled.
    const int size = 200;
    int shared = static_cast<int>(overlap * size);
    std::set<uint64_t> sa, sb;
    std::vector<uint64_t> av, bv;
    for (int i = 0; i < shared; ++i) {
      uint64_t x = rng.Next();
      sa.insert(x);
      sb.insert(x);
      av.push_back(x);
      bv.push_back(x);
    }
    for (int i = shared; i < size; ++i) {
      uint64_t x = rng.Next(), y = rng.Next();
      sa.insert(x);
      sb.insert(y);
      av.push_back(x);
      bv.push_back(y);
    }
    MinHashSketch a = SketchOf(av, family);
    MinHashSketch b = SketchOf(bv, family);
    double truth = ExactJaccard(sa, sb);
    double est = MinHashSketch::EstimateJaccard(a, b);
    // 99.99% envelope: eps = sqrt(ln(2/1e-4) / (2k)).
    double eps = std::sqrt(std::log(2.0 / 1e-4) / (2.0 * k));
    EXPECT_NEAR(est, truth, eps) << "k=" << k << " overlap=" << overlap;
  }
}

INSTANTIATE_TEST_SUITE_P(SketchSizes, MinHashAccuracy,
                         ::testing::Values(16u, 64u, 256u, 1024u));

}  // namespace
}  // namespace streamlink

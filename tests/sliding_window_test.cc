#include "stream/sliding_window.h"

#include <gtest/gtest.h>

namespace streamlink {
namespace {

TEST(SlidingWindowGraphTest, HoldsEdgesUpToWindowSize) {
  SlidingWindowGraph window(3);
  EXPECT_EQ(window.Add({0, 1}), 0u);
  EXPECT_EQ(window.Add({1, 2}), 0u);
  EXPECT_EQ(window.Add({2, 3}), 0u);
  EXPECT_EQ(window.current_edges(), 3u);
  EXPECT_TRUE(window.graph().HasEdge(0, 1));
  EXPECT_TRUE(window.graph().HasEdge(1, 2));
  EXPECT_TRUE(window.graph().HasEdge(2, 3));
}

TEST(SlidingWindowGraphTest, ExpiresOldestOnOverflow) {
  SlidingWindowGraph window(2);
  window.Add({0, 1});
  window.Add({1, 2});
  EXPECT_EQ(window.Add({2, 3}), 1u);  // expires {0,1}
  EXPECT_EQ(window.current_edges(), 2u);
  EXPECT_FALSE(window.graph().HasEdge(0, 1));
  EXPECT_TRUE(window.graph().HasEdge(1, 2));
  EXPECT_TRUE(window.graph().HasEdge(2, 3));
}

TEST(SlidingWindowGraphTest, DuplicateRefreshesPosition) {
  SlidingWindowGraph window(2);
  window.Add({0, 1});
  window.Add({1, 2});
  // Re-arrival of {0,1} makes {1,2} the oldest edge...
  EXPECT_EQ(window.Add({0, 1}), 0u);
  EXPECT_EQ(window.current_edges(), 2u);
  // ...so the next insertion expires {1,2}, not {0,1}.
  EXPECT_EQ(window.Add({2, 3}), 1u);
  EXPECT_TRUE(window.graph().HasEdge(0, 1));
  EXPECT_FALSE(window.graph().HasEdge(1, 2));
}

TEST(SlidingWindowGraphTest, NonCanonicalAndSelfLoopEdges) {
  SlidingWindowGraph window(4);
  window.Add({5, 2});           // stored canonically as {2,5}
  EXPECT_EQ(window.Add({2, 5}), 0u);  // duplicate of the same edge
  EXPECT_EQ(window.current_edges(), 1u);
  window.Add({3, 3});           // self-loop: ignored entirely
  EXPECT_EQ(window.current_edges(), 1u);
  EXPECT_TRUE(window.graph().HasEdge(2, 5));
  EXPECT_TRUE(window.graph().HasEdge(5, 2));
}

TEST(SlidingWindowGraphTest, WindowOfOneTracksLatestEdge) {
  SlidingWindowGraph window(1);
  window.Add({0, 1});
  EXPECT_EQ(window.Add({1, 2}), 1u);
  EXPECT_EQ(window.Add({2, 3}), 1u);
  EXPECT_EQ(window.current_edges(), 1u);
  EXPECT_FALSE(window.graph().HasEdge(0, 1));
  EXPECT_FALSE(window.graph().HasEdge(1, 2));
  EXPECT_TRUE(window.graph().HasEdge(2, 3));
}

TEST(SlidingWindowGraphTest, ActsAsEdgeConsumer) {
  SlidingWindowGraph window(2);
  EdgeConsumer& consumer = window;
  consumer.OnEdge({0, 1});
  consumer.OnEdge({1, 2});
  consumer.OnEdge({2, 0});
  EXPECT_EQ(window.current_edges(), 2u);
  EXPECT_FALSE(window.graph().HasEdge(0, 1));
}

TEST(SlidingWindowGraphTest, LongStreamKeepsGraphAndOrderInSync) {
  SlidingWindowGraph window(16);
  for (VertexId i = 0; i < 200; ++i) {
    window.Add({i, i + 1});
    EXPECT_LE(window.current_edges(), 16u);
    EXPECT_EQ(window.graph().num_edges(), window.current_edges());
  }
  // Exactly the last 16 path edges remain.
  for (VertexId i = 184; i < 200; ++i) {
    EXPECT_TRUE(window.graph().HasEdge(i, i + 1)) << i;
  }
  EXPECT_FALSE(window.graph().HasEdge(183, 184));
}

}  // namespace
}  // namespace streamlink

#include "util/hashing.h"

#include "sketch/minhash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace streamlink {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(Mix64, HasNoObviousCollisionsOnSequentialInputs) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  for (uint64_t bit = 0; bit < 64; bit += 7) {
    uint64_t a = Mix64(0x123456789abcdefULL);
    uint64_t b = Mix64(0x123456789abcdefULL ^ (1ULL << bit));
    int flipped = __builtin_popcountll(a ^ b);
    EXPECT_GT(flipped, 16) << "bit " << bit;
    EXPECT_LT(flipped, 48) << "bit " << bit;
  }
}

TEST(HashU64, SeedsGiveDifferentFunctions) {
  EXPECT_NE(HashU64(42, 1), HashU64(42, 2));
  EXPECT_EQ(HashU64(42, 1), HashU64(42, 1));
}

TEST(HashU64, DifferentKeysHashDifferently) {
  std::set<uint64_t> outputs;
  for (uint64_t key = 0; key < 5000; ++key) outputs.insert(HashU64(key, 7));
  EXPECT_EQ(outputs.size(), 5000u);
}

TEST(HashToUnit, StaysInOpenClosedUnitInterval) {
  EXPECT_GT(HashToUnit(0), 0.0);
  EXPECT_LE(HashToUnit(~0ULL), 1.0);
  for (uint64_t i = 0; i < 1000; ++i) {
    double u = HashToUnit(Mix64(i));
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(HashToUnit, IsApproximatelyUniform) {
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += HashToUnit(Mix64(i));
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(HashToExp, ProducesPositiveValuesWithUnitMean) {
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double e = HashToExp(Mix64(i));
    ASSERT_GT(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(HashBytes, DistinguishesContentAndLength) {
  EXPECT_NE(HashBytes("abc", 0), HashBytes("abd", 0));
  EXPECT_NE(HashBytes("a", 0), HashBytes(std::string("a\0", 2), 0));
  EXPECT_NE(HashBytes("abc", 0), HashBytes("abc", 1));
  EXPECT_EQ(HashBytes("abc", 9), HashBytes("abc", 9));
}

TEST(HashBytes, EmptyStringIsValid) {
  EXPECT_EQ(HashBytes("", 3), HashBytes("", 3));
  EXPECT_NE(HashBytes("", 3), HashBytes("", 4));
}

TEST(HashFamily, SizesAndDeterminism) {
  HashFamily f(99, 16);
  EXPECT_EQ(f.size(), 16u);
  EXPECT_EQ(f.master_seed(), 99u);
  HashFamily g(99, 16);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(f.Hash(i, 123), g.Hash(i, 123));
    EXPECT_EQ(f.seed(i), g.seed(i));
  }
}

TEST(HashFamily, FunctionsAreDistinct) {
  HashFamily f(7, 32);
  std::set<uint64_t> hashes;
  for (uint32_t i = 0; i < 32; ++i) hashes.insert(f.Hash(i, 555));
  EXPECT_EQ(hashes.size(), 32u);
}

TEST(HashFamily, DifferentMastersDiffer) {
  HashFamily f(1, 4), g(2, 4);
  EXPECT_NE(f.Hash(0, 10), g.Hash(0, 10));
}

TEST(HashFamilyDeathTest, ZeroSizeAborts) {
  EXPECT_DEATH(HashFamily(1, 0), "at least one");
}

TEST(HashFamily, MinWiseUniformity) {
  // Over a fixed set, the arg-min under independent hash functions should
  // be close to uniform across elements.
  const uint32_t set_size = 10;
  const uint32_t num_functions = 5000;
  HashFamily family(31337, num_functions);
  std::vector<int> argmin_counts(set_size, 0);
  for (uint32_t i = 0; i < num_functions; ++i) {
    uint64_t best = ~0ULL;
    uint32_t arg = 0;
    for (uint32_t x = 0; x < set_size; ++x) {
      uint64_t h = family.Hash(i, x);
      if (h < best) {
        best = h;
        arg = x;
      }
    }
    ++argmin_counts[arg];
  }
  double expected = static_cast<double>(num_functions) / set_size;
  for (uint32_t x = 0; x < set_size; ++x) {
    EXPECT_NEAR(argmin_counts[x], expected, 5 * std::sqrt(expected))
        << "element " << x;
  }
}

TEST(TabulationHash, DeterministicAndSeeded) {
  TabulationHash h1(5), h2(5), h3(6);
  EXPECT_EQ(h1(42), h2(42));
  EXPECT_NE(h1(42), h3(42));
}

TEST(TabulationHash, NoCollisionsOnSmallRange) {
  TabulationHash h(11);
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(h(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(TabulationHash, CoversHighBits) {
  TabulationHash h(13);
  uint64_t or_all = 0;
  for (uint64_t i = 0; i < 1000; ++i) or_all |= h(i);
  // All 8 byte-lanes of the output should be exercised.
  for (int byte = 0; byte < 8; ++byte) {
    EXPECT_NE((or_all >> (8 * byte)) & 0xff, 0u) << "byte " << byte;
  }
}

TEST(TabulationFamily, DeterministicAndDistinct) {
  TabulationFamily f(9, 8), g(9, 8), h(10, 8);
  EXPECT_EQ(f.size(), 8u);
  EXPECT_EQ(f.Hash(3, 42), g.Hash(3, 42));
  EXPECT_NE(f.Hash(3, 42), h.Hash(3, 42));
  std::set<uint64_t> hashes;
  for (uint32_t i = 0; i < 8; ++i) hashes.insert(f.Hash(i, 777));
  EXPECT_EQ(hashes.size(), 8u);
}

TEST(TabulationFamilyDeathTest, ZeroSizeAborts) {
  EXPECT_DEATH(TabulationFamily(1, 0), "at least one");
}

TEST(TabulationFamily, MinWiseEstimationWorksInSketch) {
  // TabulationFamily is a drop-in for HashFamily in MinHashSketch.
  TabulationFamily family(13, 256);
  MinHashSketch a(256), b(256);
  for (uint64_t i = 0; i < 100; ++i) {
    a.Update(i, family);
    b.Update(i + 50, family);  // |∩| = 50, |∪| = 150 → J = 1/3
  }
  EXPECT_NEAR(MinHashSketch::EstimateJaccard(a, b), 1.0 / 3.0, 0.12);
}

}  // namespace
}  // namespace streamlink

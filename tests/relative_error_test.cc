#include "eval/relative_error.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamlink {
namespace {

TEST(ErrorAccumulator, EmptyIsAllZero) {
  ErrorAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.nonzero_count(), 0u);
  EXPECT_DOUBLE_EQ(acc.MeanRelativeError(), 0.0);
  EXPECT_DOUBLE_EQ(acc.MedianRelativeError(), 0.0);
  EXPECT_DOUBLE_EQ(acc.MeanAbsoluteError(), 0.0);
  EXPECT_DOUBLE_EQ(acc.RootMeanSquaredError(), 0.0);
}

TEST(ErrorAccumulator, SingleObservation) {
  ErrorAccumulator acc;
  acc.Add(10.0, 12.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.nonzero_count(), 1u);
  EXPECT_DOUBLE_EQ(acc.MeanRelativeError(), 0.2);
  EXPECT_DOUBLE_EQ(acc.MeanAbsoluteError(), 2.0);
  EXPECT_DOUBLE_EQ(acc.RootMeanSquaredError(), 2.0);
  EXPECT_DOUBLE_EQ(acc.MeanSignedError(), 2.0);
}

TEST(ErrorAccumulator, ZeroTruthExcludedFromRelative) {
  ErrorAccumulator acc;
  acc.Add(0.0, 1.0);  // relative error undefined: counted only in absolute
  acc.Add(2.0, 2.0);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_EQ(acc.nonzero_count(), 1u);
  EXPECT_DOUBLE_EQ(acc.MeanRelativeError(), 0.0);
  EXPECT_DOUBLE_EQ(acc.MeanAbsoluteError(), 0.5);
}

TEST(ErrorAccumulator, SignedErrorCancels) {
  ErrorAccumulator acc;
  acc.Add(10.0, 12.0);
  acc.Add(10.0, 8.0);
  EXPECT_DOUBLE_EQ(acc.MeanSignedError(), 0.0);
  EXPECT_DOUBLE_EQ(acc.MeanAbsoluteError(), 2.0);
}

TEST(ErrorAccumulator, QuantilesOfRelativeErrors) {
  ErrorAccumulator acc;
  // Relative errors: 0.1, 0.2, 0.3, 0.4, 0.5.
  for (int i = 1; i <= 5; ++i) {
    acc.Add(10.0, 10.0 + i);
  }
  EXPECT_DOUBLE_EQ(acc.MedianRelativeError(), 0.3);
  EXPECT_DOUBLE_EQ(acc.RelativeErrorQuantile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(acc.MaxRelativeError(), 0.5);
}

TEST(ErrorAccumulator, QuantileAfterMoreAddsStaysSorted) {
  ErrorAccumulator acc;
  acc.Add(10, 15);  // 0.5
  EXPECT_DOUBLE_EQ(acc.MaxRelativeError(), 0.5);
  acc.Add(10, 19);  // 0.9 added after a sorted read
  EXPECT_DOUBLE_EQ(acc.MaxRelativeError(), 0.9);
  EXPECT_DOUBLE_EQ(acc.RelativeErrorQuantile(0.0), 0.5);
}

TEST(ErrorAccumulatorDeathTest, BadQuantileAborts) {
  ErrorAccumulator acc;
  acc.Add(1, 1);
  EXPECT_DEATH(acc.RelativeErrorQuantile(1.5), "quantile");
}

TEST(ErrorAccumulator, RmseDominatesMae) {
  ErrorAccumulator acc;
  acc.Add(0.0, 1.0);
  acc.Add(0.0, 3.0);
  EXPECT_DOUBLE_EQ(acc.MeanAbsoluteError(), 2.0);
  EXPECT_NEAR(acc.RootMeanSquaredError(), std::sqrt(5.0), 1e-12);
  EXPECT_GE(acc.RootMeanSquaredError(), acc.MeanAbsoluteError());
}

}  // namespace
}  // namespace streamlink

#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/minhash_predictor.h"
#include "core/predictor_factory.h"
#include "core/top_k_engine.h"
#include "eval/experiment.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "stream/stream_driver.h"
#include "util/random.h"

namespace streamlink {
namespace {

constexpr VertexId kNumVertices = 60;

EdgeList MakeStream(uint64_t seed, size_t num_edges) {
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    edges.emplace_back(static_cast<VertexId>(rng.NextBounded(kNumVertices)),
                       static_cast<VertexId>(rng.NextBounded(kNumVertices)));
  }
  return edges;
}

std::vector<QueryPair> FixedPairs() {
  std::vector<QueryPair> pairs;
  for (VertexId u = 0; u < 20; u += 3) {
    for (VertexId v = u + 1; v < 24; v += 5) {
      pairs.push_back(QueryPair{u, v});
    }
  }
  return pairs;
}

void ExpectEstimatesEqual(const OverlapEstimate& a, const OverlapEstimate& b,
                          const QueryPair& p) {
  EXPECT_EQ(a.jaccard, b.jaccard) << "(" << p.u << "," << p.v << ")";
  EXPECT_EQ(a.intersection, b.intersection) << "(" << p.u << "," << p.v << ")";
  EXPECT_EQ(a.union_size, b.union_size) << "(" << p.u << "," << p.v << ")";
  EXPECT_EQ(a.adamic_adar, b.adamic_adar) << "(" << p.u << "," << p.v << ")";
  EXPECT_EQ(a.resource_allocation, b.resource_allocation)
      << "(" << p.u << "," << p.v << ")";
  EXPECT_EQ(a.degree_u, b.degree_u) << "(" << p.u << "," << p.v << ")";
  EXPECT_EQ(a.degree_v, b.degree_v) << "(" << p.u << "," << p.v << ")";
}

/// A minimal predictor that keeps the base-class Clone (== nullptr), for
/// exercising the not-snapshottable publish path.
class NoClonePredictor : public LinkPredictor {
 public:
  std::string name() const override { return "noclone"; }
  OverlapEstimate EstimateOverlap(VertexId, VertexId) const override {
    return {};
  }
  VertexId num_vertices() const override { return 0; }
  uint64_t MemoryBytes() const override { return 0; }

 protected:
  void ProcessEdge(const Edge&) override {}
};

// --- The acceptance test: concurrent readers during a live threaded -----
// --- ingest, with every answer bit-identical to a sequential prefix -----
// --- build and staleness metadata consistent. ---------------------------

struct Sample {
  uint64_t snapshot_edges;
  uint64_t version;
  std::vector<OverlapEstimate> estimates;  // parallel to FixedPairs()
};

TEST(QueryService, ConcurrentReadersSeeExactSequentialPrefixes) {
  const EdgeList edges = MakeStream(/*seed=*/31, /*num_edges=*/1500);
  const std::vector<QueryPair> pairs = FixedPairs();
  ASSERT_GE(pairs.size(), 10u);

  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 32;
  config.seed = 7;
  config.threads = 2;

  QueryService service;
  ParallelIngestOptions options;
  options.batch_edges = 64;
  options.publish_every_edges = 200;
  options.on_publish = service.IngestPublisher();

  QueryRequest request;
  request.pairs = pairs;
  request.measures = {LinkMeasure::kJaccard};

  constexpr uint32_t kReaders = 4;
  std::atomic<bool> done{false};
  std::vector<std::vector<Sample>> samples(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (uint32_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load(std::memory_order_acquire)) {
        auto result = service.Query(request);
        if (!result.ok()) continue;  // before the first publish
        const QueryMeta& meta = result->meta;
        // Staleness invariants, checked live on every single query.
        EXPECT_GE(meta.live_edges, meta.snapshot_edges);
        EXPECT_EQ(meta.staleness_edges,
                  meta.live_edges - meta.snapshot_edges);
        EXPECT_GE(meta.snapshot_version, 1u);
        ASSERT_EQ(result->pairs.size(), pairs.size());
        Sample sample;
        sample.snapshot_edges = meta.snapshot_edges;
        sample.version = meta.snapshot_version;
        sample.estimates.reserve(pairs.size());
        for (size_t i = 0; i < result->pairs.size(); ++i) {
          EXPECT_EQ(result->pairs[i].pair, pairs[i]);
          sample.estimates.push_back(result->pairs[i].estimate);
        }
        samples[r].push_back(std::move(sample));
      }
    });
  }

  ParallelIngestEngine engine(config, options);
  VectorEdgeStream raw(edges);
  std::unique_ptr<EdgeStream> tapped = service.WrapStream(raw);
  auto built = engine.Build(*tapped);
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  // The final (end-of-stream) publish covers the whole stream, so the last
  // snapshot is the complete build and staleness has drained to zero.
  auto snap = service.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->stream_edges, edges.size());
  EXPECT_EQ(service.live_edges(), edges.size());
  EXPECT_GE(service.publish_count(), edges.size() / 200);

  // Readers genuinely overlapped the build: at least one of them saw a
  // mid-stream snapshot (single-core schedulers still interleave here).
  size_t total_samples = 0;
  std::map<uint64_t, const Sample*> by_prefix;
  for (const auto& reader_samples : samples) {
    total_samples += reader_samples.size();
    for (const Sample& s : reader_samples) {
      // Same version => same snapshot => identical answers across readers.
      auto [it, inserted] = by_prefix.emplace(s.snapshot_edges, &s);
      if (!inserted) {
        EXPECT_EQ(it->second->version, s.version);
        for (size_t i = 0; i < pairs.size(); ++i) {
          ExpectEstimatesEqual(it->second->estimates[i], s.estimates[i],
                               pairs[i]);
        }
      }
    }
  }
  ASSERT_GT(total_samples, 0u) << "no reader ever completed a query";

  // Every observed snapshot is bit-identical to a sequential 1-thread
  // build stopped at exactly the snapshot's reported stream position.
  for (const auto& [prefix_edges, sample] : by_prefix) {
    PredictorConfig sequential = config;
    sequential.threads = 1;
    auto reference = MakePredictor(sequential);
    ASSERT_TRUE(reference.ok());
    PrefixEdgeStream prefix(std::make_unique<VectorEdgeStream>(edges),
                            prefix_edges);
    Edge edge;
    while (prefix.Next(&edge)) (*reference)->OnEdge(edge);
    for (size_t i = 0; i < pairs.size(); ++i) {
      OverlapEstimate expected =
          (*reference)->EstimateOverlap(pairs[i].u, pairs[i].v);
      ExpectEstimatesEqual(expected, sample->estimates[i], pairs[i]);
    }
  }
}

// --- StreamDriver wiring -------------------------------------------------

TEST(QueryService, CheckpointPublisherSnapshotsAtEveryCheckpoint) {
  const EdgeList edges = MakeStream(/*seed=*/41, /*num_edges=*/400);
  MinHashPredictorOptions options;
  options.num_hashes = 16;
  options.seed = 5;
  MinHashPredictor live(options);

  QueryService service;
  StreamDriver driver;
  driver.AddConsumer(&live);
  driver.SetCheckpoints({0.25, 0.5, 0.75, 1.0},
                        service.CheckpointPublisher(live));
  VectorEdgeStream raw(edges);
  std::unique_ptr<EdgeStream> tapped = service.WrapStream(raw);
  driver.Run(*tapped);

  EXPECT_EQ(service.publish_count(), 4u);
  auto snap = service.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->stream_edges, edges.size());
  EXPECT_EQ(snap->version, 4u);
  EXPECT_EQ(snap->edges_processed, live.edges_processed());

  // The final snapshot answers exactly like the live predictor.
  QueryRequest request;
  request.pairs = FixedPairs();
  request.measures = {LinkMeasure::kJaccard, LinkMeasure::kAdamicAdar};
  auto result = service.Query(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->meta.staleness_edges, 0u);
  for (const PairResult& pr : result->pairs) {
    ExpectEstimatesEqual(live.EstimateOverlap(pr.pair.u, pr.pair.v),
                         pr.estimate, pr.pair);
    ASSERT_EQ(pr.scores.size(), 2u);
    EXPECT_EQ(pr.scores[0],
              live.Score(LinkMeasure::kJaccard, pr.pair.u, pr.pair.v));
    EXPECT_EQ(pr.scores[1],
              live.Score(LinkMeasure::kAdamicAdar, pr.pair.u, pr.pair.v));
  }
}

// --- Query semantics -----------------------------------------------------

TEST(QueryService, QueryBeforeFirstPublishIsNotFound) {
  QueryService service;
  EXPECT_EQ(service.snapshot(), nullptr);
  QueryRequest request;
  request.pairs = {QueryPair{0, 1}};
  auto result = service.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.latency().count(), 0u);
}

TEST(QueryService, TopKQueryMatchesTopKEngine) {
  const EdgeList edges = MakeStream(/*seed=*/43, /*num_edges=*/600);
  MinHashPredictorOptions options;
  options.num_hashes = 32;
  options.seed = 3;
  MinHashPredictor live(options);
  FeedStream(live, edges);

  QueryService service;
  ASSERT_TRUE(service.Publish(live, edges.size()).ok());

  QueryRequest request;
  request.pairs = FixedPairs();
  request.measures = {LinkMeasure::kAdamicAdar, LinkMeasure::kJaccard};
  request.top_k = 5;
  auto result = service.Query(request);
  ASSERT_TRUE(result.ok());
  ASSERT_LE(result->pairs.size(), 5u);

  TopKEngine engine(live, LinkMeasure::kAdamicAdar);
  auto expected = engine.TopKScored(FixedPairs(), request.measures, 5);
  ASSERT_EQ(result->pairs.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result->pairs[i].pair, expected[i].pair);
    EXPECT_EQ(result->pairs[i].scores, expected[i].scores);
  }
}

TEST(QueryService, TopKWithoutMeasuresIsInvalidArgument) {
  MinHashPredictor live(MinHashPredictorOptions{});
  QueryService service;
  ASSERT_TRUE(service.Publish(live, 0).ok());
  QueryRequest request;
  request.pairs = {QueryPair{0, 1}};
  request.top_k = 3;
  auto result = service.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryService, PublishRejectsNonCloneablePredictor) {
  NoClonePredictor live;
  QueryService service;
  Status status = service.Publish(live, 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.snapshot(), nullptr);
  EXPECT_EQ(service.publish_count(), 0u);
}

TEST(QueryService, StalenessTracksLiveFrontier) {
  const EdgeList edges = MakeStream(/*seed=*/47, /*num_edges=*/100);
  MinHashPredictorOptions options;
  options.num_hashes = 8;
  MinHashPredictor live(options);
  FeedStream(live, edges);

  QueryService service;
  ASSERT_TRUE(service.Publish(live, 100).ok());
  service.NoteLiveEdges(130);

  QueryRequest request;
  request.pairs = {QueryPair{0, 1}};
  auto result = service.Query(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->meta.snapshot_edges, 100u);
  EXPECT_EQ(result->meta.live_edges, 130u);
  EXPECT_EQ(result->meta.staleness_edges, 30u);
  EXPECT_EQ(result->meta.snapshot_version, 1u);
  EXPECT_GT(result->meta.latency_us, 0.0);
  EXPECT_EQ(service.latency().count(), 1u);
}

// --- Snapshot isolation of Clone() across predictor kinds ----------------

TEST(QueryService, SnapshotsAreImmuneToLaterIngestion) {
  const EdgeList edges = MakeStream(/*seed=*/53, /*num_edges=*/800);
  const EdgeList prefix(edges.begin(), edges.begin() + 400);
  const std::vector<QueryPair> pairs = FixedPairs();

  for (const std::string& kind : PredictorKinds()) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 16;
    config.seed = 11;
    auto live = MakePredictor(config);
    ASSERT_TRUE(live.ok()) << kind;
    FeedStream(**live, prefix);

    QueryService service;
    ASSERT_TRUE(service.Publish(**live, 400).ok()) << kind;
    auto snap = service.snapshot();
    ASSERT_NE(snap, nullptr) << kind;
    EXPECT_EQ(snap->edges_processed, (*live)->edges_processed()) << kind;

    // Keep ingesting into the live predictor; the snapshot must not move.
    EdgeList suffix(edges.begin() + 400, edges.end());
    FeedStream(**live, suffix);

    auto reference = MakePredictor(config);
    ASSERT_TRUE(reference.ok()) << kind;
    FeedStream(**reference, prefix);
    for (const QueryPair& p : pairs) {
      ExpectEstimatesEqual((*reference)->EstimateOverlap(p.u, p.v),
                           snap->predictor->EstimateOverlap(p.u, p.v), p);
    }
    EXPECT_EQ(snap->predictor->edges_processed(),
              (*reference)->edges_processed())
        << kind;
  }
}

TEST(QueryService, ShardedPublishFoldsMergeableKindsToSinglePredictor) {
  const EdgeList edges = MakeStream(/*seed=*/59, /*num_edges=*/700);
  for (const std::string& kind : {std::string("minhash"),
                                  std::string("bottomk")}) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 32;
    config.seed = 19;
    config.threads = 3;
    ParallelIngestEngine engine(config);
    VectorEdgeStream stream(edges);
    auto sharded = engine.Build(stream);
    ASSERT_TRUE(sharded.ok()) << kind;

    QueryService service;
    ASSERT_TRUE(service.Publish(**sharded, edges.size()).ok()) << kind;
    auto snap = service.snapshot();
    ASSERT_NE(snap, nullptr);
    // The clone folded the shards: a plain single-kind predictor, not a
    // sharded wrapper, with the full edge tally carried over.
    EXPECT_EQ(snap->predictor->name(), kind);
    EXPECT_EQ(snap->predictor->edges_processed(),
              (*sharded)->edges_processed())
        << kind;
    for (const QueryPair& p : FixedPairs()) {
      ExpectEstimatesEqual((*sharded)->EstimateOverlap(p.u, p.v),
                           snap->predictor->EstimateOverlap(p.u, p.v), p);
    }
  }
}

// --- Latency histogram ---------------------------------------------------

TEST(LatencyHistogram, RecordsAndRanksSamples) {
  obs::LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.PercentileMicros(0.5), 0.0);

  histogram.Record(1e-6);   // 1 us
  histogram.Record(2e-6);   // 2 us
  histogram.Record(1e-3);   // 1 ms
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_GT(histogram.MeanMicros(), 0.0);
  // Log2 buckets report upper bounds: within 2x of the true quantile.
  EXPECT_LE(histogram.PercentileMicros(0.5), 4.0);
  EXPECT_GE(histogram.PercentileMicros(0.99), 1000.0);
  EXPECT_LE(histogram.PercentileMicros(0.99), 2200.0);
  EXPECT_LE(histogram.PercentileMicros(0.5),
            histogram.PercentileMicros(0.99));

  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.MeanMicros(), 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordersLoseNothing) {
  obs::LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(1e-6 * (t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(histogram.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace streamlink

#include "sketch/icws.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "util/random.h"

namespace streamlink {
namespace {

constexpr uint64_t kSeed = 0x1c55;

using WeightedSet = std::map<uint64_t, double>;

IcwsSketch SketchOf(const WeightedSet& set, uint32_t k) {
  IcwsSketch s(k, kSeed);
  for (const auto& [item, weight] : set) s.Update(item, weight);
  return s;
}

double ExactGeneralizedJaccard(const WeightedSet& a, const WeightedSet& b) {
  double min_sum = 0.0, max_sum = 0.0;
  WeightedSet all = a;
  for (const auto& [item, weight] : b) {
    all[item] = std::max(all[item], weight);
  }
  for (const auto& [item, w_max] : all) {
    auto ia = a.find(item);
    auto ib = b.find(item);
    double wa = ia == a.end() ? 0.0 : ia->second;
    double wb = ib == b.end() ? 0.0 : ib->second;
    min_sum += std::min(wa, wb);
    max_sum += std::max(wa, wb);
  }
  return max_sum > 0 ? min_sum / max_sum : 0.0;
}

TEST(IcwsSketch, StartsEmpty) {
  IcwsSketch s(8, kSeed);
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.num_slots(), 8u);
}

TEST(IcwsSketchDeathTest, PreconditionsEnforced) {
  EXPECT_DEATH(IcwsSketch(0, kSeed), "at least one slot");
  IcwsSketch s(4, kSeed);
  EXPECT_DEATH(s.Update(1, 0.0), "positive");
  EXPECT_DEATH(s.Update(1, -2.0), "positive");
}

TEST(IcwsSketch, IdenticalWeightedSetsMatchPerfectly) {
  WeightedSet set = {{1, 0.5}, {2, 3.0}, {3, 10.0}};
  IcwsSketch a = SketchOf(set, 64);
  IcwsSketch b = SketchOf(set, 64);
  EXPECT_DOUBLE_EQ(IcwsSketch::EstimateGeneralizedJaccard(a, b), 1.0);
}

TEST(IcwsSketch, UpdateIsIdempotentAndOrderIndependent) {
  WeightedSet set = {{1, 2.0}, {2, 5.0}, {3, 0.25}};
  IcwsSketch a = SketchOf(set, 32);
  IcwsSketch b(32, kSeed);
  b.Update(3, 0.25);
  b.Update(1, 2.0);
  b.Update(2, 5.0);
  b.Update(1, 2.0);  // duplicate
  for (uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(a.slot(i).item, b.slot(i).item);
    EXPECT_EQ(a.slot(i).t, b.slot(i).t);
    EXPECT_DOUBLE_EQ(a.slot(i).a, b.slot(i).a);
  }
}

TEST(IcwsSketch, DisjointSetsRarelyMatch) {
  WeightedSet a_set, b_set;
  for (uint64_t i = 0; i < 50; ++i) {
    a_set[i] = 1.0 + i * 0.1;
    b_set[1000 + i] = 1.0 + i * 0.1;
  }
  IcwsSketch a = SketchOf(a_set, 128);
  IcwsSketch b = SketchOf(b_set, 128);
  EXPECT_LT(IcwsSketch::EstimateGeneralizedJaccard(a, b), 0.03);
}

TEST(IcwsSketch, ConsistencyGrowingAWeightOnlyLowersItsValue) {
  // Ioffe's consistency: raising one element's weight can only make that
  // element win more slots; other elements' slot values are untouched.
  WeightedSet base = {{1, 1.0}, {2, 1.0}, {3, 1.0}};
  IcwsSketch before = SketchOf(base, 64);
  WeightedSet grown = base;
  grown[2] = 50.0;
  IcwsSketch after = SketchOf(grown, 64);
  for (uint32_t i = 0; i < 64; ++i) {
    if (after.slot(i).item != 2) {
      // Slot not won by the grown element: must be identical to before.
      EXPECT_EQ(after.slot(i).item, before.slot(i).item) << "slot " << i;
      EXPECT_DOUBLE_EQ(after.slot(i).a, before.slot(i).a) << "slot " << i;
    } else {
      // Won by 2: value can only have decreased (or slot was already 2's).
      EXPECT_LE(after.slot(i).a, before.slot(i).a + 1e-15) << "slot " << i;
    }
  }
}

TEST(IcwsSketch, ScaleInvarianceOfJaccardEstimates) {
  // J_w(c·A, c·B) = J_w(A, B): estimates from scaled sets should be very
  // close (levels t shift but matches are preserved in distribution; with
  // shared hashes the estimator remains unbiased — check both are near
  // the exact value).
  Rng rng(1);
  WeightedSet a_set, b_set;
  for (uint64_t i = 0; i < 100; ++i) {
    double w = 0.5 + rng.NextDouble() * 4.0;
    a_set[i] = w;
    if (i % 2 == 0) b_set[i] = w * (0.5 + rng.NextDouble());
  }
  for (uint64_t i = 200; i < 250; ++i) b_set[i] = 1.0 + rng.NextDouble();

  double truth = ExactGeneralizedJaccard(a_set, b_set);
  const uint32_t k = 1024;
  IcwsSketch a = SketchOf(a_set, k);
  IcwsSketch b = SketchOf(b_set, k);
  double est = IcwsSketch::EstimateGeneralizedJaccard(a, b);
  EXPECT_NEAR(est, truth, 4.0 / std::sqrt(static_cast<double>(k)));

  WeightedSet a_scaled, b_scaled;
  for (const auto& [i, w] : a_set) a_scaled[i] = w * 7.3;
  for (const auto& [i, w] : b_set) b_scaled[i] = w * 7.3;
  double truth_scaled = ExactGeneralizedJaccard(a_scaled, b_scaled);
  EXPECT_NEAR(truth_scaled, truth, 1e-12);
  IcwsSketch as = SketchOf(a_scaled, k);
  IcwsSketch bs = SketchOf(b_scaled, k);
  EXPECT_NEAR(IcwsSketch::EstimateGeneralizedJaccard(as, bs), truth,
              4.0 / std::sqrt(static_cast<double>(k)));
}

/// Property: the matched-slot fraction concentrates on the exact
/// generalized Jaccard across overlap levels and weight distributions.
class IcwsAccuracy : public ::testing::TestWithParam<uint32_t> {};

TEST_P(IcwsAccuracy, EstimateConcentratesOnExactValue) {
  const uint32_t k = GetParam();
  Rng rng(k);
  for (double shared_fraction : {0.2, 0.7}) {
    WeightedSet a_set, b_set;
    const int size = 300;
    int shared = static_cast<int>(shared_fraction * size);
    for (int i = 0; i < shared; ++i) {
      double w = std::exp(rng.NextGaussian());  // lognormal weights
      a_set[i] = w;
      b_set[i] = w * (0.5 + rng.NextDouble());
    }
    for (int i = shared; i < size; ++i) {
      a_set[i] = std::exp(rng.NextGaussian());
      b_set[10000 + i] = std::exp(rng.NextGaussian());
    }
    double truth = ExactGeneralizedJaccard(a_set, b_set);
    IcwsSketch a = SketchOf(a_set, k);
    IcwsSketch b = SketchOf(b_set, k);
    double est = IcwsSketch::EstimateGeneralizedJaccard(a, b);
    double envelope = std::sqrt(std::log(2.0 / 1e-4) / (2.0 * k));
    EXPECT_NEAR(est, truth, envelope)
        << "k=" << k << " shared=" << shared_fraction;
  }
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, IcwsAccuracy,
                         ::testing::Values(64u, 256u, 1024u));

TEST(IcwsSketch, MergeUnionOfDisjointSets) {
  WeightedSet a_set = {{1, 2.0}, {2, 3.0}};
  WeightedSet b_set = {{10, 1.0}, {11, 4.0}};
  IcwsSketch a = SketchOf(a_set, 32);
  IcwsSketch b = SketchOf(b_set, 32);
  WeightedSet union_set = a_set;
  union_set.insert(b_set.begin(), b_set.end());
  IcwsSketch expected = SketchOf(union_set, 32);
  a.MergeUnion(b);
  for (uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(a.slot(i).item, expected.slot(i).item);
    EXPECT_DOUBLE_EQ(a.slot(i).a, expected.slot(i).a);
  }
}

TEST(IcwsSketchDeathTest, IncompatibleOperationsAbort) {
  IcwsSketch a(8, 1), b(8, 2), c(16, 1);
  a.Update(1, 1.0);
  b.Update(1, 1.0);
  EXPECT_DEATH(IcwsSketch::CountMatches(a, b, nullptr), "incompatible");
  EXPECT_DEATH(a.MergeUnion(c), "incompatible");
}

}  // namespace
}  // namespace streamlink

#include "core/triangle_counter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "graph/graph_stats.h"

namespace streamlink {
namespace {

void Feed(StreamingTriangleCounter& counter, const EdgeList& edges) {
  for (const Edge& e : edges) counter.OnEdge(e);
}

TEST(TriangleCounter, EmptyStreamIsZero) {
  StreamingTriangleCounter counter;
  EXPECT_DOUBLE_EQ(counter.Estimate(), 0.0);
  EXPECT_EQ(counter.edges_processed(), 0u);
}

TEST(TriangleCounter, SingleTriangleCountsOnce) {
  StreamingTriangleCounter counter;
  Feed(counter, {{0, 1}, {1, 2}, {0, 2}});
  // At small degrees the sketch holds full neighborhoods: exact count.
  EXPECT_NEAR(counter.Estimate(), 1.0, 1e-9);
}

TEST(TriangleCounter, TriangleFreeGraphStaysZero) {
  StreamingTriangleCounter counter;
  // A path: no triangles.
  EdgeList path;
  for (VertexId i = 0; i + 1 < 50; ++i) path.push_back({i, i + 1});
  Feed(counter, path);
  EXPECT_NEAR(counter.Estimate(), 0.0, 1e-9);
}

TEST(TriangleCounter, SelfLoopsIgnored) {
  StreamingTriangleCounter counter;
  counter.OnEdge(Edge(3, 3));
  EXPECT_EQ(counter.edges_processed(), 0u);
}

TEST(TriangleCounter, CompleteGraphCountCloseToExact) {
  // K6 has C(6,3) = 20 triangles. The per-edge CN estimate is statistical
  // (the MinHash match fraction is, for non-identical neighborhoods), so
  // expect tight-but-not-exact agreement at k=512.
  TriangleCounterOptions options;
  options.num_hashes = 512;
  StreamingTriangleCounter counter(options);
  EdgeList edges;
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) edges.push_back({u, v});
  }
  Feed(counter, edges);
  EXPECT_NEAR(counter.Estimate(), 20.0, 1.5);
}

TEST(TriangleCounter, ArrivalOrderRobust) {
  // Each triangle is counted at its last edge regardless of order; the
  // statistical CN estimates differ slightly across orders but both must
  // track the true count (2 triangles).
  EdgeList edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}};
  StreamingTriangleCounter forward, backward;
  Feed(forward, edges);
  EdgeList reversed(edges.rbegin(), edges.rend());
  Feed(backward, reversed);
  EXPECT_NEAR(forward.Estimate(), 2.0, 0.5);
  EXPECT_NEAR(backward.Estimate(), 2.0, 0.5);
}

/// Accuracy on real workloads against exact triangle counts.
class TriangleAccuracy : public ::testing::TestWithParam<std::string> {};

TEST_P(TriangleAccuracy, EstimateWithinTwentyPercent) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{GetParam(), 0.05, 151});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  GraphStats stats = ComputeGraphStats(csr);
  if (stats.num_triangles < 100) GTEST_SKIP() << "too few triangles";

  TriangleCounterOptions options;
  options.num_hashes = 256;
  StreamingTriangleCounter counter(options);
  Feed(counter, g.edges);
  double truth = static_cast<double>(stats.num_triangles);
  EXPECT_NEAR(counter.Estimate(), truth, 0.2 * truth)
      << GetParam() << ": truth=" << truth;
}

INSTANTIATE_TEST_SUITE_P(Workloads, TriangleAccuracy,
                         ::testing::Values("ws", "sbm", "ba"));

TEST(TriangleCounter, PredictorRemainsQueryable) {
  StreamingTriangleCounter counter;
  Feed(counter, {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  EXPECT_DOUBLE_EQ(counter.predictor().EstimateOverlap(0, 1).jaccard, 1.0);
}

}  // namespace
}  // namespace streamlink

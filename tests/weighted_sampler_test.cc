#include "sketch/weighted_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/hashing.h"
#include "util/random.h"

namespace streamlink {
namespace {

constexpr uint64_t kExpSeed = 0xabcde;

double ExpVariate(uint64_t item) { return HashToExp(HashU64(item, kExpSeed)); }

TEST(WeightedSampler, StartsEmpty) {
  WeightedBottomKSampler s(4);
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_FALSE(s.IsSaturated());
  EXPECT_EQ(s.Threshold(), WeightedBottomKSampler::kInfiniteRank);
}

TEST(WeightedSamplerDeathTest, ZeroKAborts) {
  EXPECT_DEATH(WeightedBottomKSampler(0), "k >= 1");
}

TEST(WeightedSampler, KeepsAllBelowCapacity) {
  WeightedBottomKSampler s(8);
  for (uint64_t i = 1; i <= 5; ++i) {
    EXPECT_TRUE(s.Offer(i, ExpVariate(i), 1.0));
  }
  EXPECT_EQ(s.size(), 5u);
}

TEST(WeightedSampler, EntriesSortedByRank) {
  WeightedBottomKSampler s(16);
  for (uint64_t i = 1; i <= 16; ++i) s.Offer(i, ExpVariate(i), 1.0);
  for (uint32_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(s.entries()[i - 1].rank, s.entries()[i].rank);
  }
}

TEST(WeightedSampler, EvictsLargestRankWhenSaturated) {
  WeightedBottomKSampler s(3);
  for (uint64_t i = 1; i <= 10; ++i) s.Offer(i, ExpVariate(i), 1.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.IsSaturated());
  double tau = s.Threshold();
  EXPECT_EQ(tau, s.entries().back().rank);
  // Offering an item with rank above τ changes nothing.
  EXPECT_FALSE(s.Offer(999, tau * 2.0, 1.0));
}

TEST(WeightedSampler, ReOfferReplacesEntryWithFreshWeight) {
  WeightedBottomKSampler s(4);
  s.Offer(7, 2.0, 1.0);  // rank 2.0
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.entries()[0].rank, 2.0);
  s.Offer(7, 2.0, 4.0);  // weight grew: rank 0.5
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.entries()[0].rank, 0.5);
  EXPECT_DOUBLE_EQ(s.entries()[0].weight, 4.0);
  // Identical re-offer is a no-op.
  EXPECT_FALSE(s.Offer(7, 2.0, 4.0));
}

TEST(WeightedSampler, HigherWeightMeansMoreInclusion) {
  // One heavy item among many light ones: the heavy item should be present
  // in almost every saturated sampler.
  int heavy_present = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    WeightedBottomKSampler s(5);
    uint64_t exp_seed = 1000 + t;
    for (uint64_t i = 1; i <= 50; ++i) {
      double e = HashToExp(HashU64(i, exp_seed));
      double w = (i == 1) ? 50.0 : 1.0;
      s.Offer(i, e, w);
    }
    for (const auto& entry : s.entries()) {
      if (entry.item == 1) ++heavy_present;
    }
  }
  EXPECT_GT(heavy_present, trials * 8 / 10);
}

TEST(WeightedSampler, SubsetSumExactWhenUnsaturated) {
  WeightedBottomKSampler s(16);
  double truth = 0.0;
  for (uint64_t i = 1; i <= 10; ++i) {
    double w = 1.0 / (1.0 + static_cast<double>(i));
    s.Offer(i, ExpVariate(i), w);
    truth += w;
  }
  auto weight = [](uint64_t item) {
    return 1.0 / (1.0 + static_cast<double>(item));
  };
  EXPECT_NEAR(s.EstimateSubsetSum(weight), truth, 1e-12);
}

TEST(WeightedSampler, SubsetSumIsApproximatelyUnbiased) {
  // Estimate Σ w(i) for i in [1, 200] from k=32 samples, averaged over
  // many independent hash seeds.
  const uint64_t n = 200;
  auto weight = [](uint64_t item) {
    return 1.0 / std::log(static_cast<double>(item) + 10.0);
  };
  double truth = 0.0;
  for (uint64_t i = 1; i <= n; ++i) truth += weight(i);

  const int trials = 400;
  double sum_estimates = 0.0;
  for (int t = 0; t < trials; ++t) {
    WeightedBottomKSampler s(32);
    uint64_t seed = 555 + t;
    for (uint64_t i = 1; i <= n; ++i) {
      s.Offer(i, HashToExp(HashU64(i, seed)), weight(i));
    }
    sum_estimates += s.EstimateSubsetSum(weight);
  }
  double mean = sum_estimates / trials;
  EXPECT_NEAR(mean, truth, 0.1 * truth);
}

TEST(WeightedSampler, IntersectionEmptyWhenNoCommonItems) {
  WeightedBottomKSampler a(8), b(8);
  for (uint64_t i = 1; i <= 5; ++i) a.Offer(i, ExpVariate(i), 1.0);
  for (uint64_t i = 100; i <= 105; ++i) b.Offer(i, ExpVariate(i), 1.0);
  auto weight = [](uint64_t) { return 1.0; };
  EXPECT_DOUBLE_EQ(
      WeightedBottomKSampler::EstimateWeightedIntersection(a, b, weight), 0.0);
}

TEST(WeightedSampler, IntersectionExactWhenBothUnsaturated) {
  WeightedBottomKSampler a(32), b(32);
  // A = {1..10}, B = {6..15}; intersection {6..10}.
  for (uint64_t i = 1; i <= 10; ++i) a.Offer(i, ExpVariate(i), 1.0);
  for (uint64_t i = 6; i <= 15; ++i) b.Offer(i, ExpVariate(i), 1.0);
  auto weight = [](uint64_t) { return 1.0; };
  EXPECT_NEAR(
      WeightedBottomKSampler::EstimateWeightedIntersection(a, b, weight), 5.0,
      1e-12);
}

TEST(WeightedSampler, IntersectionApproximatelyUnbiasedWhenSaturated) {
  // |A| = |B| = 300 with 100 shared items; estimate Σ_{shared} w with k=64.
  auto weight = [](uint64_t item) {
    return 1.0 / std::log(static_cast<double>(item % 37) + 3.0);
  };
  double truth = 0.0;
  for (uint64_t i = 1; i <= 100; ++i) truth += weight(i);

  const int trials = 300;
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    uint64_t seed = 777 + t;
    WeightedBottomKSampler a(64), b(64);
    for (uint64_t i = 1; i <= 100; ++i) {  // shared
      double e = HashToExp(HashU64(i, seed));
      a.Offer(i, e, weight(i));
      b.Offer(i, e, weight(i));
    }
    for (uint64_t i = 1000; i < 1200; ++i) {
      a.Offer(i, HashToExp(HashU64(i, seed)), weight(i));
    }
    for (uint64_t i = 2000; i < 2200; ++i) {
      b.Offer(i, HashToExp(HashU64(i, seed)), weight(i));
    }
    sum += WeightedBottomKSampler::EstimateWeightedIntersection(a, b, weight);
  }
  double mean = sum / trials;
  EXPECT_NEAR(mean, truth, 0.15 * truth);
}

TEST(WeightedSampler, MemoryScalesWithK) {
  WeightedBottomKSampler small(4), large(256);
  for (uint64_t i = 1; i <= 300; ++i) {
    small.Offer(i, ExpVariate(i), 1.0);
    large.Offer(i, ExpVariate(i), 1.0);
  }
  EXPECT_LT(small.MemoryBytes(), large.MemoryBytes());
}

}  // namespace
}  // namespace streamlink

#include "eval/temporal_split.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "gen/workloads.h"
#include "graph/types.h"
#include "util/random.h"

namespace streamlink {
namespace {

TEST(TemporalSplit, SplitsAtFraction) {
  EdgeList stream;
  for (VertexId i = 0; i < 100; ++i) stream.push_back({i, i + 1});
  TrainTestSplit split = MakeTemporalSplit(stream, 0.8);
  EXPECT_EQ(split.train.size(), 80u);
}

TEST(TemporalSplitDeathTest, DegenerateFractionsAbort) {
  EdgeList stream = {{0, 1}};
  EXPECT_DEATH(MakeTemporalSplit(stream, 0.0), "train_fraction");
  EXPECT_DEATH(MakeTemporalSplit(stream, 1.0), "train_fraction");
}

TEST(TemporalSplit, TestPositivesArePredictable) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 71});
  TrainTestSplit split = MakeTemporalSplit(g.edges, 0.8);
  ASSERT_GT(split.test_positives.size(), 0u);

  std::unordered_set<Edge, EdgeHash> train_edges;
  std::unordered_set<VertexId> train_vertices;
  for (const Edge& e : split.train) {
    train_edges.insert(e.Canonical());
    train_vertices.insert(e.u);
    train_vertices.insert(e.v);
  }
  std::unordered_set<Edge, EdgeHash> seen;
  for (const Edge& e : split.test_positives) {
    EXPECT_EQ(train_edges.count(e.Canonical()), 0u) << "already in train";
    EXPECT_EQ(train_vertices.count(e.u), 1u) << "unknown endpoint";
    EXPECT_EQ(train_vertices.count(e.v), 1u) << "unknown endpoint";
    EXPECT_TRUE(seen.insert(e.Canonical()).second) << "duplicate positive";
  }
}

TEST(TemporalSplit, RepeatedTrainEdgesInTestAreDropped) {
  EdgeList stream = {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                     {0, 1},  // duplicate of a train edge, lands in test
                     {1, 3}};
  TrainTestSplit split = MakeTemporalSplit(stream, 0.67);  // train = first 4
  ASSERT_EQ(split.train.size(), 4u);
  for (const Edge& e : split.test_positives) {
    EXPECT_FALSE(e.Canonical() == Edge(0, 1));
  }
}

TEST(MakeLabeledPairsFn, ProducesPositivesAndNegatives) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 72});
  TrainTestSplit split = MakeTemporalSplit(g.edges, 0.8);
  Rng rng(1);
  LabeledPairs labeled = MakeLabeledPairs(split, 1.0, rng);
  ASSERT_EQ(labeled.pairs.size(), labeled.labels.size());

  size_t positives = 0, negatives = 0;
  for (bool label : labeled.labels) label ? ++positives : ++negatives;
  EXPECT_EQ(positives, split.test_positives.size());
  EXPECT_NEAR(static_cast<double>(negatives), positives, positives * 0.05);
}

TEST(MakeLabeledPairsFn, NegativesAreTrueNonEdges) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"er", 0.05, 73});
  TrainTestSplit split = MakeTemporalSplit(g.edges, 0.8);
  Rng rng(2);
  LabeledPairs labeled = MakeLabeledPairs(split, 2.0, rng);

  std::unordered_set<Edge, EdgeHash> known;
  for (const Edge& e : split.train) known.insert(e.Canonical());
  for (const Edge& e : split.test_positives) known.insert(e.Canonical());

  for (size_t i = 0; i < labeled.pairs.size(); ++i) {
    if (labeled.labels[i]) continue;
    Edge e = Edge(labeled.pairs[i].u, labeled.pairs[i].v).Canonical();
    EXPECT_EQ(known.count(e), 0u) << "negative is actually an edge";
  }
}

TEST(MakeLabeledPairsFn, NegativeRatioScales) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 74});
  TrainTestSplit split = MakeTemporalSplit(g.edges, 0.8);
  Rng rng(3);
  LabeledPairs one = MakeLabeledPairs(split, 1.0, rng);
  LabeledPairs three = MakeLabeledPairs(split, 3.0, rng);
  EXPECT_GT(three.pairs.size(), one.pairs.size());
}

}  // namespace
}  // namespace streamlink

#include "graph/digraph.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamlink {
namespace {

/// Reference digraph:
///   0 -> 2, 0 -> 3, 1 -> 2, 1 -> 3, 1 -> 4, 2 -> 0
/// N+(0) = {2,3}, N+(1) = {2,3,4}; N-(2) = {0,1}, N-(3) = {0,1}.
DirectedAdjacencyGraph Reference() {
  DirectedAdjacencyGraph g;
  g.AddArc(0, 2);
  g.AddArc(0, 3);
  g.AddArc(1, 2);
  g.AddArc(1, 3);
  g.AddArc(1, 4);
  g.AddArc(2, 0);
  return g;
}

TEST(DirectedGraph, ArcsAreDirectional) {
  DirectedAdjacencyGraph g = Reference();
  EXPECT_TRUE(g.HasArc(0, 2));
  EXPECT_TRUE(g.HasArc(2, 0));
  EXPECT_FALSE(g.HasArc(3, 0));
  EXPECT_FALSE(g.HasArc(2, 1));
}

TEST(DirectedGraph, RejectsSelfLoopsAndDuplicates) {
  DirectedAdjacencyGraph g;
  EXPECT_FALSE(g.AddArc(1, 1));
  EXPECT_TRUE(g.AddArc(1, 2));
  EXPECT_FALSE(g.AddArc(1, 2));
  EXPECT_TRUE(g.AddArc(2, 1));  // reverse arc is distinct
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(DirectedGraph, DegreesSplitBySide) {
  DirectedAdjacencyGraph g = Reference();
  EXPECT_EQ(g.OutDegree(1), 3u);
  EXPECT_EQ(g.InDegree(1), 0u);
  EXPECT_EQ(g.OutDegree(2), 1u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.OutDegree(99), 0u);
}

TEST(DirectedGraph, SuccessorsAndPredecessors) {
  DirectedAdjacencyGraph g = Reference();
  EXPECT_EQ(g.Successors(1).count(4), 1u);
  EXPECT_EQ(g.Predecessors(4).count(1), 1u);
  EXPECT_EQ(g.Predecessors(1).size(), 0u);
}

TEST(DirectedGraphDeathTest, OutOfRangeAborts) {
  DirectedAdjacencyGraph g(2);
  EXPECT_DEATH(g.Successors(5), "out of range");
  EXPECT_DEATH(g.Predecessors(5), "out of range");
}

TEST(DirectedGraph, OutOutOverlap) {
  DirectedAdjacencyGraph g = Reference();
  // N+(0) = {2,3}, N+(1) = {2,3,4}: ∩ = 2, ∪ = 3.
  auto overlap =
      g.ComputeOverlap(0, Direction::kOut, 1, Direction::kOut);
  EXPECT_EQ(overlap.intersection, 2u);
  EXPECT_EQ(overlap.union_size, 3u);
  EXPECT_NEAR(overlap.jaccard, 2.0 / 3.0, 1e-12);
  // AA weights: w=2 has total degree 3, w=3 has total degree 2.
  EXPECT_NEAR(overlap.adamic_adar,
              1.0 / std::log(3.0) + 1.0 / std::log(2.0), 1e-12);
}

TEST(DirectedGraph, InInOverlap) {
  DirectedAdjacencyGraph g = Reference();
  // N-(2) = {0,1}, N-(3) = {0,1}: identical.
  auto overlap = g.ComputeOverlap(2, Direction::kIn, 3, Direction::kIn);
  EXPECT_EQ(overlap.intersection, 2u);
  EXPECT_DOUBLE_EQ(overlap.jaccard, 1.0);
}

TEST(DirectedGraph, MixedDirectionOverlap) {
  DirectedAdjacencyGraph g = Reference();
  // N+(0) = {2,3} vs N-(0) = {2}: ∩ = {2}.
  auto overlap = g.ComputeOverlap(0, Direction::kOut, 0, Direction::kIn);
  EXPECT_EQ(overlap.intersection, 1u);
  EXPECT_EQ(overlap.union_size, 2u);
}

TEST(DirectedGraph, EmptySidesGiveZero) {
  DirectedAdjacencyGraph g = Reference();
  auto overlap = g.ComputeOverlap(4, Direction::kOut, 0, Direction::kOut);
  EXPECT_EQ(overlap.intersection, 0u);
  EXPECT_DOUBLE_EQ(overlap.jaccard, 0.0);
}

TEST(DirectedGraph, DirectionNames) {
  EXPECT_STREQ(DirectionName(Direction::kOut), "out");
  EXPECT_STREQ(DirectionName(Direction::kIn), "in");
}

}  // namespace
}  // namespace streamlink

#include "sketch/space_saving.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "util/random.h"

namespace streamlink {
namespace {

TEST(SpaceSaving, ExactBelowCapacity) {
  SpaceSaving s(10);
  s.Offer(1);
  s.Offer(1);
  s.Offer(2);
  EXPECT_EQ(s.Estimate(1), 2u);
  EXPECT_EQ(s.Estimate(2), 1u);
  EXPECT_EQ(s.Estimate(3), 0u);
  EXPECT_EQ(s.total_count(), 3u);
  EXPECT_EQ(s.num_tracked(), 2u);
}

TEST(SpaceSavingDeathTest, ZeroCapacityAborts) {
  EXPECT_DEATH(SpaceSaving(0), "capacity");
}

TEST(SpaceSaving, NeverUndercountsTrackedItems) {
  SpaceSaving s(20);
  std::map<uint64_t, uint64_t> truth;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    // Skewed stream over 200 keys.
    uint64_t key = rng.NextBounded(1 + rng.NextBounded(200));
    s.Offer(key);
    ++truth[key];
  }
  for (const auto& counter : s.TopK(20)) {
    EXPECT_GE(counter.count, truth[counter.item]) << "item " << counter.item;
    EXPECT_GE(counter.count - counter.error, 0u);
    EXPECT_LE(counter.count - counter.error, truth[counter.item]);
  }
}

TEST(SpaceSaving, HeavyHittersAboveThresholdAreTracked) {
  // Guarantee: any item with frequency > N/capacity is present.
  SpaceSaving s(10);
  const int n = 10000;
  Rng rng(2);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < n; ++i) {
    uint64_t key;
    if (rng.NextBernoulli(0.5)) {
      key = rng.NextBounded(3);  // 3 heavy keys share half the stream
    } else {
      key = 100 + rng.NextBounded(5000);
    }
    s.Offer(key);
    ++truth[key];
  }
  for (uint64_t key = 0; key < 3; ++key) {
    ASSERT_GT(truth[key], static_cast<uint64_t>(n) / 10);
    EXPECT_GT(s.Estimate(key), 0u) << "heavy key " << key << " lost";
  }
}

TEST(SpaceSaving, TopKSortedDescending) {
  SpaceSaving s(50);
  for (uint64_t key = 0; key < 20; ++key) {
    for (uint64_t rep = 0; rep <= key; ++rep) s.Offer(key);
  }
  auto top = s.TopK(5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
  EXPECT_EQ(top[0].item, 19u);
  EXPECT_EQ(top[0].count, 20u);
  EXPECT_EQ(top[0].error, 0u);
}

TEST(SpaceSaving, TopKClampsToTracked) {
  SpaceSaving s(10);
  s.Offer(1);
  s.Offer(2);
  EXPECT_EQ(s.TopK(100).size(), 2u);
}

TEST(SpaceSaving, GuaranteedHeavyDetection) {
  SpaceSaving s(4);
  for (int i = 0; i < 100; ++i) s.Offer(7);
  s.Offer(1);
  s.Offer(2);
  s.Offer(3);
  EXPECT_TRUE(s.IsGuaranteedHeavy(7, 100));
  EXPECT_FALSE(s.IsGuaranteedHeavy(1, 2));
  EXPECT_FALSE(s.IsGuaranteedHeavy(999, 1));
}

TEST(SpaceSaving, EvictionInheritsMinCount) {
  SpaceSaving s(2);
  s.Offer(1);  // {1:1}
  s.Offer(2);  // {1:1, 2:1}
  s.Offer(3);  // evicts min (count 1) -> {*, 3: count 2, error 1}
  EXPECT_EQ(s.Estimate(3), 2u);
  auto top = s.TopK(2);
  bool found = false;
  for (const auto& c : top) {
    if (c.item == 3) {
      EXPECT_EQ(c.error, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpaceSaving, WeightedOffers) {
  SpaceSaving s(8);
  s.Offer(5, 10);
  s.Offer(6, 3);
  EXPECT_EQ(s.Estimate(5), 10u);
  EXPECT_EQ(s.total_count(), 13u);
}

}  // namespace
}  // namespace streamlink

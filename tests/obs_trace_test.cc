// Scoped-span tracer: disabled spans cost nothing and record nothing,
// enabled spans capture correct nesting depths and containment intervals,
// the per-thread rings drop oldest-first on overflow, and the drained
// spans serialize to loadable Chrome trace_event JSON.
//
// Tracer::Get() is process-wide state; every test enables it fresh and
// drains/disables before finishing so tests stay order-independent.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace streamlink {
namespace obs {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Drain();
  }
};

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::Get().enabled());
  { ScopedSpan span("test/ignored"); }
  EXPECT_TRUE(Tracer::Get().Drain().empty());
}

TEST_F(TracerTest, NowNsIsMonotonic) {
  const uint64_t a = Tracer::NowNs();
  const uint64_t b = Tracer::NowNs();
  EXPECT_LE(a, b);
}

TEST_F(TracerTest, NestedSpansRecordDepthAndContainment) {
  Tracer::Get().Enable();
  {
    ScopedSpan outer("test/outer");
    {
      ScopedSpan inner("test/inner");
    }
    {
      ScopedSpan sibling("test/sibling");
    }
  }
  std::vector<TraceSpan> spans = Tracer::Get().Drain();
  ASSERT_EQ(spans.size(), 3u);

  auto find = [&](const std::string& name) -> const TraceSpan& {
    auto it = std::find_if(spans.begin(), spans.end(), [&](const TraceSpan& s) {
      return name == s.name;
    });
    SL_CHECK(it != spans.end()) << "missing span " << name;
    return *it;
  };
  const TraceSpan& outer = find("test/outer");
  const TraceSpan& inner = find("test/inner");
  const TraceSpan& sibling = find("test/sibling");

  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(sibling.depth, 1u);
  EXPECT_EQ(outer.tid, inner.tid);

  // Children start no earlier and end no later than the parent.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  EXPECT_GE(sibling.start_ns, inner.start_ns + inner.dur_ns);

  // Drain is ordered by start time and leaves the rings empty.
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[1].start_ns, spans[2].start_ns);
  EXPECT_TRUE(Tracer::Get().Drain().empty());
}

TEST_F(TracerTest, SpansOpenedBeforeDisableAreDropped) {
  Tracer::Get().Enable();
  // A ScopedSpan checks the enabled flag at *construction*; one that was
  // never armed records nothing even if tracing turns on mid-scope, and
  // one armed before Disable records if still active at destruction.
  { ScopedSpan span("test/armed"); }
  Tracer::Get().Disable();
  { ScopedSpan span("test/after_disable"); }
  std::vector<TraceSpan> spans = Tracer::Get().Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test/armed");
}

TEST_F(TracerTest, ThreadsGetDistinctIdsAndRingsDropOldest) {
  Tracer::Get().Enable(/*ring_capacity=*/4);
  const uint64_t dropped_before = Tracer::Get().dropped();
  std::thread worker([] {
    for (int i = 0; i < 10; ++i) {
      ScopedSpan span("test/worker");
    }
  });
  worker.join();
  { ScopedSpan span("test/main"); }

  std::vector<TraceSpan> spans = Tracer::Get().Drain();
  // The worker's ring retained only its newest 4 of 10 spans.
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(Tracer::Get().dropped() - dropped_before, 6u);

  uint32_t worker_tid = 0, main_tid = 0;
  bool saw_worker = false, saw_main = false;
  for (const TraceSpan& s : spans) {
    if (std::string(s.name) == "test/worker") {
      worker_tid = s.tid;
      saw_worker = true;
    } else {
      main_tid = s.tid;
      saw_main = true;
    }
  }
  ASSERT_TRUE(saw_worker && saw_main);
  EXPECT_NE(worker_tid, main_tid);
}

TEST_F(TracerTest, ChromeJsonHasCompleteEventsPerSpan) {
  Tracer::Get().Enable();
  {
    ScopedSpan outer("test/json_outer");
    ScopedSpan inner("test/json_inner");
  }
  std::vector<TraceSpan> spans = Tracer::Get().Drain();
  const std::string json = Tracer::ToChromeJson(spans);

  // One "X" (complete) event per span, with the trace_event required keys.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back() == '\n' ? json[json.size() - 2] : json.back(), ']');
  size_t events = 0;
  for (size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++events;
  }
  EXPECT_EQ(events, spans.size());
  EXPECT_NE(json.find("\"name\":\"test/json_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test/json_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

TEST_F(TracerTest, WriteChromeTraceRejectsBadPath) {
  Tracer::Get().Enable();
  { ScopedSpan span("test/unwritable"); }
  EXPECT_FALSE(
      Tracer::Get().WriteChromeTrace("/nonexistent/dir/trace.json").ok());
}

}  // namespace
}  // namespace obs
}  // namespace streamlink

// Snapshot persistence across every predictor kind: Save -> Load -> Save
// byte identity, estimate preservation, and a corruption harness that
// truncates at every prefix length and flips every byte — a damaged
// snapshot must always come back as a clean error Status, never a crash
// and never a silent success.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/directed_predictor.h"
#include "core/minhash_predictor.h"
#include "core/predictor_factory.h"
#include "core/sharded_predictor.h"
#include "core/weighted_predictor.h"
#include "eval/experiment.h"
#include "gen/workloads.h"
#include "util/random.h"
#include "util/serde.h"

namespace streamlink {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void ExpectSameEstimates(const LinkPredictor& a, const LinkPredictor& b,
                         VertexId num_vertices) {
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    OverlapEstimate ea = a.EstimateOverlap(u, v);
    OverlapEstimate eb = b.EstimateOverlap(u, v);
    EXPECT_DOUBLE_EQ(ea.degree_u, eb.degree_u);
    EXPECT_DOUBLE_EQ(ea.degree_v, eb.degree_v);
    EXPECT_DOUBLE_EQ(ea.intersection, eb.intersection);
    EXPECT_DOUBLE_EQ(ea.union_size, eb.union_size);
    EXPECT_DOUBLE_EQ(ea.jaccard, eb.jaccard);
    EXPECT_DOUBLE_EQ(ea.adamic_adar, eb.adamic_adar);
    EXPECT_DOUBLE_EQ(ea.resource_allocation, eb.resource_allocation);
  }
}

struct KindCase {
  std::string label;
  PredictorConfig config;
};

std::vector<KindCase> AllKindCases() {
  std::vector<KindCase> cases;
  auto add = [&cases](std::string label, std::string kind,
                      auto... tweak) {
    KindCase c;
    c.label = std::move(label);
    c.config.kind = std::move(kind);
    c.config.sketch_size = 16;
    c.config.seed = 7;
    (tweak(c.config), ...);
    cases.push_back(std::move(c));
  };
  add("minhash", "minhash");
  add("bottomk_exact_degrees", "bottomk");
  add("bottomk_kmv_degrees", "bottomk",
      [](PredictorConfig& c) { c.sketch_degrees = true; });
  add("oph", "oph");
  add("exact", "exact");
  add("vertex_biased", "vertex_biased");
  add("windowed_minhash", "windowed_minhash", [](PredictorConfig& c) {
    c.window_edges = 80;
    c.window_buckets = 4;
  });
  add("sharded_minhash", "minhash",
      [](PredictorConfig& c) { c.threads = 3; });
  add("sharded_bottomk", "bottomk",
      [](PredictorConfig& c) { c.threads = 3; });
  return cases;
}

class PersistenceKindTest : public ::testing::TestWithParam<KindCase> {
 protected:
  void SetUp() override {
    // Pid-qualified: each gtest case runs as its own ctest process, and
    // parallel workers share one temp dir.
    std::string prefix =
        ::testing::TempDir() + "/persist_" + std::to_string(::getpid());
    path_a_ = prefix + "_a.snap";
    path_b_ = prefix + "_b.snap";
  }
  void TearDown() override {
    std::remove(path_a_.c_str());
    std::remove(path_b_.c_str());
  }

  /// Builds the parameterized kind and ingests a small workload.
  /// Sharded cases ingest through the synchronous routing path.
  std::unique_ptr<LinkPredictor> BuildIngested() {
    const PredictorConfig& config = GetParam().config;
    Result<std::unique_ptr<LinkPredictor>> built =
        config.threads > 1
            ? Result<std::unique_ptr<LinkPredictor>>(
                  [&]() -> Result<std::unique_ptr<LinkPredictor>> {
                    auto sharded = ShardedPredictor::Make(config);
                    if (!sharded.ok()) return sharded.status();
                    return std::unique_ptr<LinkPredictor>(
                        std::move(*sharded));
                  }())
            : MakePredictor(config);
    SL_CHECK(built.ok()) << built.status().ToString();
    GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 101});
    num_vertices_ = g.num_vertices;
    FeedStream(**built, g.edges);
    return std::move(*built);
  }

  std::string path_a_, path_b_;
  VertexId num_vertices_ = 0;
};

TEST_P(PersistenceKindTest, SaveLoadSaveIsByteIdentical) {
  auto original = BuildIngested();
  ASSERT_TRUE(original->Save(path_a_).ok());

  auto loaded = LoadPredictorSnapshot(path_a_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), original->name());
  EXPECT_EQ((*loaded)->edges_processed(), original->edges_processed());
  EXPECT_EQ((*loaded)->num_vertices(), original->num_vertices());
  ExpectSameEstimates(*original, **loaded, num_vertices_);

  ASSERT_TRUE((*loaded)->Save(path_b_).ok());
  std::string a = ReadFileBytes(path_a_);
  std::string b = ReadFileBytes(path_b_);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "second-generation snapshot differs from the first";
}

TEST_P(PersistenceKindTest, LoadedPredictorKeepsIngesting) {
  auto original = BuildIngested();
  ASSERT_TRUE(original->Save(path_a_).ok());
  auto loaded = LoadPredictorSnapshot(path_a_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Both sides ingest the same suffix; they must stay in lockstep.
  EdgeList more = {{0, 5}, {1, 6}, {2, 7}, {3, 8}};
  FeedStream(*original, more);
  FeedStream(**loaded, more);
  EXPECT_EQ((*loaded)->edges_processed(), original->edges_processed());
  ExpectSameEstimates(*original, **loaded, num_vertices_);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PersistenceKindTest, ::testing::ValuesIn(AllKindCases()),
    [](const ::testing::TestParamInfo<KindCase>& info) {
      return info.param.label;
    });

// --- Corruption harness ---

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string prefix =
        ::testing::TempDir() + "/corrupt_" + std::to_string(::getpid());
    path_ = prefix + "_src.snap";
    mangled_ = prefix + "_mangled.snap";
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mangled_.c_str());
  }

  /// Every prefix truncation and every single-byte flip of `bytes` must
  /// load as a clean error: never a crash, never a silent success.
  void ExpectAllDamageDetected(const std::string& bytes) {
    ASSERT_FALSE(bytes.empty());
    for (size_t len = 0; len < bytes.size(); ++len) {
      WriteFileBytes(mangled_, bytes.substr(0, len));
      auto loaded = LoadPredictorSnapshot(mangled_);
      EXPECT_FALSE(loaded.ok()) << "truncation to " << len
                                << " bytes loaded successfully";
    }
    for (size_t i = 0; i < bytes.size(); ++i) {
      std::string flipped = bytes;
      flipped[i] = static_cast<char>(flipped[i] ^ 0xff);
      WriteFileBytes(mangled_, flipped);
      auto loaded = LoadPredictorSnapshot(mangled_);
      EXPECT_FALSE(loaded.ok()) << "byte flip at offset " << i
                                << " loaded successfully";
    }
  }

  std::string path_, mangled_;
};

TEST_F(CorruptionTest, MinHashSnapshotDetectsAllDamage) {
  MinHashPredictor predictor(MinHashPredictorOptions{4, 9});
  FeedStream(predictor, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}});
  ASSERT_TRUE(predictor.Save(path_).ok());
  ExpectAllDamageDetected(ReadFileBytes(path_));
}

TEST_F(CorruptionTest, ShardedSnapshotDetectsAllDamage) {
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 4;
  config.seed = 9;
  config.threads = 2;
  auto sharded = ShardedPredictor::Make(config);
  ASSERT_TRUE(sharded.ok());
  FeedStream(**sharded, {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  ASSERT_TRUE((*sharded)->Save(path_).ok());
  ExpectAllDamageDetected(ReadFileBytes(path_));
}

TEST_F(CorruptionTest, WindowedSnapshotDetectsAllDamage) {
  PredictorConfig config;
  config.kind = "windowed_minhash";
  config.sketch_size = 4;
  config.seed = 9;
  config.window_edges = 8;
  config.window_buckets = 2;
  auto predictor = MakePredictor(config);
  ASSERT_TRUE(predictor.ok());
  FeedStream(**predictor,
             {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  ASSERT_TRUE((*predictor)->Save(path_).ok());
  ExpectAllDamageDetected(ReadFileBytes(path_));
}

// --- Targeted invalid-content cases ---

class InvalidSnapshotTest : public CorruptionTest {};

TEST_F(InvalidSnapshotTest, UnknownKindIsRejected) {
  {
    Status st = WriteFileAtomic(path_, [](BinaryWriter& w) {
      WriteSnapshotHeader(w, "alien", 1);
      w.WriteU64(0);
      return w.status();
    });
    ASSERT_TRUE(st.ok());
  }
  auto loaded = LoadPredictorSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("alien"), std::string::npos);
}

TEST_F(InvalidSnapshotTest, DegreeTableMismatchIsRejected) {
  // A minhash payload claiming 3 degree entries over a 2-vertex store —
  // the lockstep-invariant violation the loader must catch before it
  // constructs anything.
  {
    Status st = WriteFileAtomic(path_, [](BinaryWriter& w) {
      WriteSnapshotHeader(w, "minhash", 1);
      w.WriteU32(4);                                  // num_hashes
      w.WriteU64(9);                                  // seed
      w.WriteU64(2);                                  // edges_processed
      w.WriteVector(std::vector<uint32_t>{1, 2, 3});  // 3 degrees...
      w.WriteU64(2);                                  // ...2 vertices
      return w.status();
    });
    ASSERT_TRUE(st.ok());
  }
  auto loaded = LoadPredictorSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("degree table"),
            std::string::npos);
}

TEST_F(InvalidSnapshotTest, SiblingKindsPointAtTheirOwnLoader) {
  WeightedJaccardPredictor weighted(WeightedPredictorOptions{8, 9});
  weighted.OnWeightedEdge(0, 1, 2.5);
  ASSERT_TRUE(weighted.Save(path_).ok());
  auto loaded = LoadPredictorSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("WeightedJaccardPredictor::Load"),
            std::string::npos);
}

// --- Sibling kinds (not LinkPredictors): weighted and directed ---

class SiblingPersistenceTest : public CorruptionTest {};

TEST_F(SiblingPersistenceTest, WeightedRoundTripIsByteIdentical) {
  WeightedJaccardPredictor original(WeightedPredictorOptions{16, 7});
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.02, 77});
  for (size_t i = 0; i < g.edges.size(); ++i) {
    original.OnWeightedEdge(g.edges[i].u, g.edges[i].v,
                            1.0 + static_cast<double>(i % 7));
  }
  ASSERT_TRUE(original.Save(path_).ok());

  auto loaded = WeightedJaccardPredictor::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->edges_processed(), original.edges_processed());
  EXPECT_EQ(loaded->num_vertices(), original.num_vertices());
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    auto ea = original.Estimate(u, v);
    auto eb = loaded->Estimate(u, v);
    EXPECT_DOUBLE_EQ(ea.generalized_jaccard, eb.generalized_jaccard);
    EXPECT_DOUBLE_EQ(ea.min_sum, eb.min_sum);
    EXPECT_DOUBLE_EQ(ea.strength_u, eb.strength_u);
  }

  ASSERT_TRUE(loaded->Save(mangled_).ok());
  EXPECT_EQ(ReadFileBytes(path_), ReadFileBytes(mangled_));
}

TEST_F(SiblingPersistenceTest, DirectedRoundTripIsByteIdentical) {
  DirectedMinHashPredictor original(DirectedPredictorOptions{16, 7});
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.02, 78});
  for (const Edge& e : g.edges) original.OnEdge(e);
  ASSERT_TRUE(original.Save(path_).ok());

  auto loaded = DirectedMinHashPredictor::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->arcs_processed(), original.arcs_processed());
  EXPECT_EQ(loaded->num_vertices(), original.num_vertices());
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    for (Direction du : {Direction::kOut, Direction::kIn}) {
      for (Direction dv : {Direction::kOut, Direction::kIn}) {
        auto ea = original.Estimate(u, du, v, dv);
        auto eb = loaded->Estimate(u, du, v, dv);
        EXPECT_DOUBLE_EQ(ea.jaccard, eb.jaccard);
        EXPECT_DOUBLE_EQ(ea.intersection, eb.intersection);
        EXPECT_DOUBLE_EQ(ea.adamic_adar, eb.adamic_adar);
      }
    }
  }

  ASSERT_TRUE(loaded->Save(mangled_).ok());
  EXPECT_EQ(ReadFileBytes(path_), ReadFileBytes(mangled_));
}

TEST_F(SiblingPersistenceTest, WeightedTruncationAndFlipsAreDetected) {
  WeightedJaccardPredictor predictor(WeightedPredictorOptions{4, 9});
  predictor.OnWeightedEdge(0, 1, 1.5);
  predictor.OnWeightedEdge(1, 2, 2.5);
  ASSERT_TRUE(predictor.Save(path_).ok());
  const std::string bytes = ReadFileBytes(path_);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(mangled_, bytes.substr(0, len));
    EXPECT_FALSE(WeightedJaccardPredictor::Load(mangled_).ok());
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0xff);
    WriteFileBytes(mangled_, flipped);
    EXPECT_FALSE(WeightedJaccardPredictor::Load(mangled_).ok());
  }
}

}  // namespace
}  // namespace streamlink

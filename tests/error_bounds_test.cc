#include "core/error_bounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamlink {
namespace {

TEST(ErrorBounds, FailureProbabilityFormula) {
  // k=128, eps=0.1: 2·exp(-2·128·0.01) ≈ 2·exp(-2.56) ≈ 0.154.
  EXPECT_NEAR(MinHashJaccardFailureProbability(128, 0.1),
              2.0 * std::exp(-2.56), 1e-12);
}

TEST(ErrorBounds, FailureProbabilityClampedToOne) {
  EXPECT_DOUBLE_EQ(MinHashJaccardFailureProbability(1, 0.01), 1.0);
}

TEST(ErrorBounds, FailureProbabilityDecreasesInK) {
  double prev = 1.1;
  for (uint32_t k : {256u, 1024u, 4096u}) {
    double p = MinHashJaccardFailureProbability(k, 0.05);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(ErrorBounds, SketchSizeForMatchesInverse) {
  const double eps = 0.05, delta = 0.01;
  uint32_t k = MinHashSketchSizeFor(eps, delta);
  // The bound holds at the returned k and fails just below it.
  EXPECT_LE(MinHashJaccardFailureProbability(k, eps), delta + 1e-12);
  if (k > 1) {
    EXPECT_GT(MinHashJaccardFailureProbability(k - 1, eps), delta - 1e-9);
  }
}

TEST(ErrorBounds, SketchSizeForKnownValue) {
  // ln(2/0.05) / (2·0.1²) = ln(40)/0.02 ≈ 184.4 → 185.
  EXPECT_EQ(MinHashSketchSizeFor(0.1, 0.05), 185u);
}

TEST(ErrorBounds, ErrorAtIsInverseOfSizeFor) {
  const uint32_t k = 200;
  const double delta = 0.05;
  double eps = MinHashJaccardErrorAt(k, delta);
  EXPECT_NEAR(MinHashJaccardFailureProbability(k, eps), delta, 1e-9);
}

TEST(ErrorBounds, BottomKRelativeError) {
  EXPECT_NEAR(BottomKCardinalityRelativeStdError(102), 0.1, 1e-12);
  EXPECT_GT(BottomKCardinalityRelativeStdError(16),
            BottomKCardinalityRelativeStdError(256));
}

TEST(ErrorBoundsDeathTest, PreconditionsEnforced) {
  EXPECT_DEATH(MinHashJaccardFailureProbability(10, 0.0), "positive");
  EXPECT_DEATH(MinHashSketchSizeFor(0.0, 0.5), "epsilon");
  EXPECT_DEATH(MinHashSketchSizeFor(0.5, 1.5), "delta");
  EXPECT_DEATH(BottomKCardinalityRelativeStdError(2), "k >= 3");
  EXPECT_DEATH(CommonNeighborErrorBound(0.1, 2.0, 10), "jaccard");
}

TEST(ErrorBounds, CommonNeighborBoundScalesWithDegrees) {
  double small = CommonNeighborErrorBound(0.05, 0.2, 20);
  double large = CommonNeighborErrorBound(0.05, 0.2, 2000);
  EXPECT_NEAR(large / small, 100.0, 1e-9);
}

TEST(ErrorBounds, CommonNeighborBoundShrinksWithJaccard) {
  EXPECT_GT(CommonNeighborErrorBound(0.05, 0.0, 100),
            CommonNeighborErrorBound(0.05, 1.0, 100));
}

}  // namespace
}  // namespace streamlink

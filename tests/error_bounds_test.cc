#include "core/error_bounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamlink {
namespace {

TEST(ErrorBounds, FailureProbabilityFormula) {
  // k=128, eps=0.1: 2·exp(-2·128·0.01) ≈ 2·exp(-2.56) ≈ 0.154.
  EXPECT_NEAR(MinHashJaccardFailureProbability(128, 0.1),
              2.0 * std::exp(-2.56), 1e-12);
}

TEST(ErrorBounds, FailureProbabilityClampedToOne) {
  EXPECT_DOUBLE_EQ(MinHashJaccardFailureProbability(1, 0.01), 1.0);
}

TEST(ErrorBounds, FailureProbabilityDecreasesInK) {
  double prev = 1.1;
  for (uint32_t k : {256u, 1024u, 4096u}) {
    double p = MinHashJaccardFailureProbability(k, 0.05);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(ErrorBounds, SketchSizeForMatchesInverse) {
  const double eps = 0.05, delta = 0.01;
  uint32_t k = MinHashSketchSizeFor(eps, delta);
  // The bound holds at the returned k and fails just below it.
  EXPECT_LE(MinHashJaccardFailureProbability(k, eps), delta + 1e-12);
  if (k > 1) {
    EXPECT_GT(MinHashJaccardFailureProbability(k - 1, eps), delta - 1e-9);
  }
}

TEST(ErrorBounds, SketchSizeForKnownValue) {
  // ln(2/0.05) / (2·0.1²) = ln(40)/0.02 ≈ 184.4 → 185.
  EXPECT_EQ(MinHashSketchSizeFor(0.1, 0.05), 185u);
}

TEST(ErrorBounds, ErrorAtIsInverseOfSizeFor) {
  const uint32_t k = 200;
  const double delta = 0.05;
  double eps = MinHashJaccardErrorAt(k, delta);
  EXPECT_NEAR(MinHashJaccardFailureProbability(k, eps), delta, 1e-9);
}

TEST(ErrorBounds, BottomKRelativeError) {
  EXPECT_NEAR(BottomKCardinalityRelativeStdError(102), 0.1, 1e-12);
  EXPECT_GT(BottomKCardinalityRelativeStdError(16),
            BottomKCardinalityRelativeStdError(256));
}

TEST(ErrorBoundsDeathTest, PreconditionsEnforced) {
  EXPECT_DEATH(MinHashJaccardFailureProbability(10, 0.0), "positive");
  EXPECT_DEATH(MinHashSketchSizeFor(0.0, 0.5), "epsilon");
  EXPECT_DEATH(MinHashSketchSizeFor(0.5, 1.5), "delta");
  EXPECT_DEATH(BottomKCardinalityRelativeStdError(2), "k >= 3");
  EXPECT_DEATH(CommonNeighborErrorBound(0.1, 2.0, 10), "jaccard");
}

TEST(ErrorBounds, AllowedViolationsCoversTheMeanPlusSlack) {
  // The ceiling must sit above the binomial mean Q·δ but far below Q.
  const uint64_t q = 1000;
  const double delta = 0.05;
  uint64_t allowed = AllowedToleranceViolations(q, delta, 1e-9);
  EXPECT_GT(allowed, static_cast<uint64_t>(q * delta));
  EXPECT_LT(allowed, q / 4);
}

TEST(ErrorBounds, AllowedViolationsMonotoneInConfidence) {
  // Demanding higher overall confidence (smaller Δ) can only raise the
  // ceiling; a laxer per-query δ can only raise it too.
  const uint64_t q = 500;
  EXPECT_GE(AllowedToleranceViolations(q, 0.05, 1e-12),
            AllowedToleranceViolations(q, 0.05, 1e-3));
  EXPECT_GE(AllowedToleranceViolations(q, 0.10, 1e-6),
            AllowedToleranceViolations(q, 0.01, 1e-6));
}

TEST(ErrorBounds, AllowedViolationsNeverExceedsQueryCount) {
  // Zero queries allow zero violations; when the Bernstein slack alone
  // exceeds tiny Q, the ceiling caps at Q (every query may violate).
  EXPECT_EQ(AllowedToleranceViolations(0, 0.05, 1e-9), 0u);
  EXPECT_EQ(AllowedToleranceViolations(3, 0.5, 1e-12), 3u);
  EXPECT_EQ(AllowedToleranceViolations(1, 0.99, 0.5), 1u);
}

TEST(ErrorBoundsDeathTest, AllowedViolationsRejectsDegenerateDeltas) {
  EXPECT_DEATH(AllowedToleranceViolations(100, 0.0, 1e-9),
               "per_query_delta");
  EXPECT_DEATH(AllowedToleranceViolations(100, 1.0, 1e-9),
               "per_query_delta");
  EXPECT_DEATH(AllowedToleranceViolations(100, 0.05, 0.0), "overall_delta");
}

TEST(ErrorBounds, AllowedViolationsMatchesBernsteinFormula) {
  // Q=256, δ=0.05, Δ=1e-9: t = ln(1e9) ≈ 20.723;
  // 12.8 + sqrt(2·256·0.05·0.95·20.723) + (2/3)·20.723 ≈ 49.07 → 50.
  EXPECT_EQ(AllowedToleranceViolations(256, 0.05, 1e-9), 50u);
}

TEST(ErrorBounds, CommonNeighborBoundScalesWithDegrees) {
  double small = CommonNeighborErrorBound(0.05, 0.2, 20);
  double large = CommonNeighborErrorBound(0.05, 0.2, 2000);
  EXPECT_NEAR(large / small, 100.0, 1e-9);
}

TEST(ErrorBounds, CommonNeighborBoundShrinksWithJaccard) {
  EXPECT_GT(CommonNeighborErrorBound(0.05, 0.0, 100),
            CommonNeighborErrorBound(0.05, 1.0, 100));
}

}  // namespace
}  // namespace streamlink

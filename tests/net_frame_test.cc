#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace streamlink {
namespace net {
namespace {

Frame MakeQueryFrame(uint64_t id, const std::string& payload) {
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.request_id = id;
  frame.payload = payload;
  return frame;
}

TEST(NetFrame, RoundTripsThroughDecoder) {
  const Frame sent = MakeQueryFrame(42, "hello payload");
  const std::string wire = EncodeFrame(sent);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + sent.payload.size());

  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size(), &frames).ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kQuery);
  EXPECT_EQ(frames[0].request_id, 42u);
  EXPECT_EQ(frames[0].payload, sent.payload);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(NetFrame, EmptyPayloadFramesWork) {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 7;
  const std::string wire = EncodeFrame(ping);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes);
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size(), &frames).ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kPing);
  EXPECT_TRUE(frames[0].payload.empty());
}

TEST(NetFrame, DecodesByteAtATime) {
  const std::string wire = EncodeFrame(MakeQueryFrame(9, "drip-fed bytes"));
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (char c : wire) {
    ASSERT_TRUE(decoder.Feed(&c, 1, &frames).ok());
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "drip-fed bytes");
}

TEST(NetFrame, DecodesManyFramesFromOneBuffer) {
  std::string wire;
  for (uint64_t id = 0; id < 20; ++id) {
    wire += EncodeFrame(MakeQueryFrame(id, std::string(id, 'x')));
  }
  // Split at an arbitrary unaligned point to exercise buffering.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  const size_t cut = wire.size() / 3 + 1;
  ASSERT_TRUE(decoder.Feed(wire.data(), cut, &frames).ok());
  ASSERT_TRUE(decoder.Feed(wire.data() + cut, wire.size() - cut, &frames).ok());
  ASSERT_EQ(frames.size(), 20u);
  for (uint64_t id = 0; id < 20; ++id) {
    EXPECT_EQ(frames[id].request_id, id);
    EXPECT_EQ(frames[id].payload.size(), id);
  }
}

TEST(NetFrame, RejectsEveryHeaderByteFlip) {
  const std::string wire = EncodeFrame(MakeQueryFrame(3, "payload"));
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    std::string corrupt = wire;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    FrameDecoder decoder;
    std::vector<Frame> frames;
    Status st = decoder.Feed(corrupt.data(), corrupt.size(), &frames);
    EXPECT_FALSE(st.ok()) << "header flip at byte " << i << " not detected";
    EXPECT_TRUE(frames.empty());
  }
}

TEST(NetFrame, ErrorIsSticky) {
  std::string corrupt = EncodeFrame(MakeQueryFrame(1, "p"));
  corrupt[0] ^= 0x01;
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.Feed(corrupt.data(), corrupt.size(), &frames).ok());
  // Even pristine frames are rejected afterwards: the stream has no
  // resync point.
  const std::string good = EncodeFrame(MakeQueryFrame(2, "q"));
  EXPECT_FALSE(decoder.Feed(good.data(), good.size(), &frames).ok());
  EXPECT_FALSE(decoder.status().ok());
  EXPECT_TRUE(frames.empty());
}

TEST(NetFrame, RejectsOversizedPayloadBeforeBuffering) {
  Frame big = MakeQueryFrame(5, std::string(4096, 'z'));
  const std::string wire = EncodeFrame(big);
  FrameDecoderOptions options;
  options.max_payload_bytes = 1024;
  FrameDecoder decoder(options);
  std::vector<Frame> frames;
  // Feeding just the header is enough to trip the limit — the decoder
  // must not wait for (or allocate) the payload.
  Status st = decoder.Feed(wire.data(), kFrameHeaderBytes, &frames);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(frames.empty());
}

TEST(NetFrame, PartialHeaderIsNotAnError) {
  const std::string wire = EncodeFrame(MakeQueryFrame(8, "abc"));
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.Feed(wire.data(), kFrameHeaderBytes - 1, &frames).ok());
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(decoder.buffered_bytes(), kFrameHeaderBytes - 1);
  ASSERT_TRUE(decoder
                  .Feed(wire.data() + kFrameHeaderBytes - 1,
                        wire.size() - (kFrameHeaderBytes - 1), &frames)
                  .ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "abc");
}

TEST(NetFrame, ArbitraryGarbageNeverCrashes) {
  // A tiny deterministic smoke version of the FuzzNetFrame target.
  std::string junk;
  for (int i = 0; i < 4096; ++i) {
    junk.push_back(static_cast<char>((i * 131 + 17) & 0xff));
  }
  FrameDecoder decoder;
  std::vector<Frame> frames;
  (void)decoder.Feed(junk.data(), junk.size(), &frames);
  // Whatever happened, the decoder stayed bounded and reported a status.
  SUCCEED();
}

}  // namespace
}  // namespace net
}  // namespace streamlink

#include "sketch/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace streamlink {
namespace {

TEST(QuantileSketch, StartsEmpty) {
  QuantileSketch s(0.01);
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.count(), 0u);
}

TEST(QuantileSketchDeathTest, PreconditionsEnforced) {
  EXPECT_DEATH(QuantileSketch(0.0), "epsilon");
  EXPECT_DEATH(QuantileSketch(0.6), "epsilon");
  QuantileSketch s(0.1);
  EXPECT_DEATH(s.Quantile(0.5), "empty");
  s.Insert(1.0);
  EXPECT_DEATH(s.Quantile(1.5), "quantile");
}

TEST(QuantileSketch, SingleValue) {
  QuantileSketch s(0.1);
  s.Insert(42.0);
  EXPECT_DOUBLE_EQ(s.Median(), 42.0);
  EXPECT_DOUBLE_EQ(s.Min(), 42.0);
  EXPECT_DOUBLE_EQ(s.Max(), 42.0);
}

TEST(QuantileSketch, ExactOnTinyStreams) {
  QuantileSketch s(0.05);
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.Insert(v);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_NEAR(s.Median(), 3.0, 1.0);
}

TEST(QuantileSketch, RankErrorWithinEpsilonOnUniform) {
  const double epsilon = 0.02;
  QuantileSketch s(epsilon);
  Rng rng(1);
  const int n = 50000;
  std::vector<double> values;
  values.reserve(n);
  for (int i = 0; i < n; ++i) {
    double v = rng.NextDouble();
    values.push_back(v);
    s.Insert(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double estimate = s.Quantile(q);
    // True rank of the returned value.
    auto it = std::lower_bound(values.begin(), values.end(), estimate);
    double rank = static_cast<double>(it - values.begin()) / n;
    EXPECT_NEAR(rank, q, 3 * epsilon) << "q=" << q;
  }
}

TEST(QuantileSketch, RankErrorOnSkewedInput) {
  const double epsilon = 0.02;
  QuantileSketch s(epsilon);
  Rng rng(2);
  const int n = 30000;
  std::vector<double> values;
  for (int i = 0; i < n; ++i) {
    double v = std::exp(4.0 * rng.NextDouble());  // heavy right tail
    values.push_back(v);
    s.Insert(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    double estimate = s.Quantile(q);
    auto it = std::lower_bound(values.begin(), values.end(), estimate);
    double rank = static_cast<double>(it - values.begin()) / n;
    EXPECT_NEAR(rank, q, 3 * epsilon) << "q=" << q;
  }
}

TEST(QuantileSketch, SortedAndReversedInsertionOrders) {
  for (bool reversed : {false, true}) {
    QuantileSketch s(0.05);
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
      s.Insert(static_cast<double>(reversed ? n - i : i));
    }
    EXPECT_NEAR(s.Median(), n / 2.0, 3 * 0.05 * n) << reversed;
    EXPECT_NEAR(s.Quantile(0.9), 0.9 * n, 3 * 0.05 * n) << reversed;
  }
}

TEST(QuantileSketch, SpaceStaysSublinear) {
  QuantileSketch s(0.01);
  Rng rng(3);
  const int n = 200000;
  for (int i = 0; i < n; ++i) s.Insert(rng.NextDouble());
  // GK bound: O((1/eps) * log(eps*n)) ≈ a few thousand; definitely far
  // below n.
  EXPECT_LT(s.NumTuples(), static_cast<size_t>(n / 10));
  EXPECT_EQ(s.count(), static_cast<uint64_t>(n));
}

TEST(QuantileSketch, DuplicateValuesHandled) {
  QuantileSketch s(0.05);
  for (int i = 0; i < 1000; ++i) s.Insert(7.0);
  for (int i = 0; i < 1000; ++i) s.Insert(9.0);
  EXPECT_DOUBLE_EQ(s.Min(), 7.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  double median = s.Median();
  EXPECT_TRUE(median == 7.0 || median == 9.0);
}

}  // namespace
}  // namespace streamlink

// Exporter formats: the Prometheus text exposition (golden strings —
// `# TYPE` comments, streamlink_ prefix, dot-to-underscore mapping,
// cumulative le buckets) and the JSON dump, which must survive a
// ParseJsonDump round trip bit-for-bit in every field the CLI's
// `stats --metrics` table reads.

#include "obs/export.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace streamlink {
namespace obs {
namespace {

MetricsRegistry& PopulatedRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("ingest.edges_total").Add(1234);
    r->GetCounter("serve.queries_total").Add(7);
    r->GetGauge("serve.snapshot_staleness_edges").Set(42.0);
    r->GetGauge("stream.window_eps").Set(1.5);
    Histogram& hist = r->GetHistogram("serve.query_latency_ns");
    hist.Record(3);     // bucket le=4
    hist.Record(3);     // bucket le=4
    hist.Record(1000);  // bucket le=1024
    return r;
  }();
  return *registry;
}

TEST(ExportTextTest, PrometheusNameMapsDotsAndBadChars) {
  EXPECT_EQ(PrometheusName("ingest.edges_total"),
            "streamlink_ingest_edges_total");
  EXPECT_EQ(PrometheusName("ingest.shard0.half_edges_total"),
            "streamlink_ingest_shard0_half_edges_total");
  EXPECT_EQ(PrometheusName("weird-name!"), "streamlink_weird_name_");
}

TEST(ExportTextTest, GoldenCounterAndGaugeLines) {
  const std::string text = ExportText(PopulatedRegistry());
  EXPECT_NE(text.find("# TYPE streamlink_ingest_edges_total counter\n"
                      "streamlink_ingest_edges_total 1234\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE streamlink_serve_snapshot_staleness_edges "
                      "gauge\n"
                      "streamlink_serve_snapshot_staleness_edges 42\n"),
            std::string::npos)
      << text;
  // Non-integral gauges keep their fraction.
  EXPECT_NE(text.find("streamlink_stream_window_eps 1.5\n"),
            std::string::npos)
      << text;
}

TEST(ExportTextTest, GoldenHistogramSeriesIsCumulative) {
  const std::string text = ExportText(PopulatedRegistry());
  const std::string expected =
      "# TYPE streamlink_serve_query_latency_ns histogram\n"
      "streamlink_serve_query_latency_ns_bucket{le=\"4\"} 2\n"
      "streamlink_serve_query_latency_ns_bucket{le=\"1024\"} 3\n"
      "streamlink_serve_query_latency_ns_bucket{le=\"+Inf\"} 3\n"
      "streamlink_serve_query_latency_ns_sum 1006\n"
      "streamlink_serve_query_latency_ns_count 3\n";
  EXPECT_NE(text.find(expected), std::string::npos) << text;
}

TEST(ExportTextTest, SectionsAppearInCounterGaugeHistogramOrder) {
  const std::string text = ExportText(PopulatedRegistry());
  const size_t counter_at = text.find("streamlink_ingest_edges_total ");
  const size_t gauge_at = text.find("streamlink_stream_window_eps ");
  const size_t hist_at = text.find("streamlink_serve_query_latency_ns_sum ");
  ASSERT_NE(counter_at, std::string::npos);
  ASSERT_NE(gauge_at, std::string::npos);
  ASSERT_NE(hist_at, std::string::npos);
  EXPECT_LT(counter_at, gauge_at);
  EXPECT_LT(gauge_at, hist_at);
}

TEST(ExportJsonTest, RoundTripsThroughParseJsonDump) {
  MetricsSnapshot original = PopulatedRegistry().Snapshot();
  auto parsed = ParseJsonDump(ExportJson(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  ASSERT_EQ(parsed->counters.size(), original.counters.size());
  for (size_t i = 0; i < original.counters.size(); ++i) {
    EXPECT_EQ(parsed->counters[i].name, original.counters[i].name);
    EXPECT_EQ(parsed->counters[i].value, original.counters[i].value);
  }
  ASSERT_EQ(parsed->gauges.size(), original.gauges.size());
  for (size_t i = 0; i < original.gauges.size(); ++i) {
    EXPECT_EQ(parsed->gauges[i].name, original.gauges[i].name);
    EXPECT_EQ(parsed->gauges[i].value, original.gauges[i].value);
  }
  ASSERT_EQ(parsed->histograms.size(), original.histograms.size());
  for (size_t i = 0; i < original.histograms.size(); ++i) {
    const HistogramSample& a = original.histograms[i];
    const HistogramSample& b = parsed->histograms[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.count, a.count);
    EXPECT_EQ(b.sum, a.sum);
    EXPECT_EQ(b.mean, a.mean);
    EXPECT_EQ(b.p50, a.p50);
    EXPECT_EQ(b.p90, a.p90);
    EXPECT_EQ(b.p99, a.p99);
    EXPECT_EQ(b.max, a.max);
    EXPECT_EQ(b.buckets, a.buckets);
  }
}

TEST(ExportJsonTest, EmptyRegistryRoundTrips) {
  MetricsRegistry registry;
  auto parsed = ParseJsonDump(ExportJson(registry));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->counters.empty());
  EXPECT_TRUE(parsed->gauges.empty());
  EXPECT_TRUE(parsed->histograms.empty());
}

TEST(ParseJsonDumpTest, RejectsNonDumpInputs) {
  EXPECT_FALSE(ParseJsonDump("").ok());
  EXPECT_FALSE(ParseJsonDump("[]").ok());
  EXPECT_FALSE(ParseJsonDump("{\"not_a_section\": []}").ok());
  EXPECT_FALSE(ParseJsonDump("{\"counters\": [{\"name\": 3}]}").ok());
  EXPECT_FALSE(ParseJsonDump("{\"counters\": []} trailing").ok());
  // The errors carry the InvalidArgument code and a byte offset.
  Status status = ParseJsonDump("[]").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("byte"), std::string::npos);
}

TEST(ReadJsonDumpFileTest, MissingFileIsIoError) {
  auto result = ReadJsonDumpFile("/nonexistent/metrics.json");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace obs
}  // namespace streamlink

#include "core/directed_predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/workloads.h"
#include "graph/digraph.h"
#include "util/random.h"

namespace streamlink {
namespace {

EdgeList ReferenceArcs() {
  // Same digraph as digraph_test: N+(0)={2,3}, N+(1)={2,3,4},
  // N-(2)={0,1}, N-(3)={0,1}.
  return {{0, 2}, {0, 3}, {1, 2}, {1, 3}, {1, 4}, {2, 0}};
}

void Feed(DirectedMinHashPredictor& p, const EdgeList& arcs) {
  for (const Edge& e : arcs) p.OnEdge(e);
}

TEST(DirectedPredictor, TracksSidedDegrees) {
  DirectedMinHashPredictor p;
  Feed(p, ReferenceArcs());
  EXPECT_EQ(p.arcs_processed(), 6u);
  EXPECT_EQ(p.OutDegree(1), 3u);
  EXPECT_EQ(p.InDegree(1), 0u);
  EXPECT_EQ(p.InDegree(2), 2u);
  EXPECT_EQ(p.OutDegree(2), 1u);
}

TEST(DirectedPredictor, SelfLoopsIgnored) {
  DirectedMinHashPredictor p;
  p.OnEdge(Edge(5, 5));
  EXPECT_EQ(p.arcs_processed(), 0u);
}

TEST(DirectedPredictor, SmallNeighborhoodsConcentrate) {
  // MinHash estimates are statistical even on tiny sets (each slot matches
  // with probability J); with k=512 the estimate concentrates tightly.
  DirectedMinHashPredictor p(DirectedPredictorOptions{512, 7});
  Feed(p, ReferenceArcs());
  auto est = p.Estimate(0, Direction::kOut, 1, Direction::kOut);
  EXPECT_NEAR(est.jaccard, 2.0 / 3.0, 0.12);
  EXPECT_NEAR(est.intersection, 2.0, 0.5);
  EXPECT_NEAR(est.adamic_adar,
              1.0 / std::log(3.0) + 1.0 / std::log(2.0), 0.8);
}

TEST(DirectedPredictor, InInIdenticalPredecessors) {
  DirectedMinHashPredictor p;
  Feed(p, ReferenceArcs());
  auto est = p.Estimate(2, Direction::kIn, 3, Direction::kIn);
  EXPECT_DOUBLE_EQ(est.jaccard, 1.0);
  EXPECT_NEAR(est.intersection, 2.0, 1e-9);
}

TEST(DirectedPredictor, MixedDirections) {
  DirectedMinHashPredictor p(DirectedPredictorOptions{512, 7});
  Feed(p, ReferenceArcs());
  // N+(0) = {2,3} vs N-(0) = {2}: true intersection 1, jaccard 1/2.
  auto est = p.Estimate(0, Direction::kOut, 0, Direction::kIn);
  EXPECT_NEAR(est.intersection, 1.0, 0.3);
  EXPECT_NEAR(est.jaccard, 0.5, 0.12);
}

TEST(DirectedPredictor, DirectionMattersUnlikeUndirected) {
  DirectedMinHashPredictor p;
  Feed(p, {{0, 9}, {1, 9}, {9, 2}});
  // 0 and 1 share successor 9...
  EXPECT_GT(p.Estimate(0, Direction::kOut, 1, Direction::kOut).jaccard, 0.99);
  // ...but share no predecessors.
  EXPECT_DOUBLE_EQ(
      p.Estimate(0, Direction::kIn, 1, Direction::kIn).jaccard, 0.0);
}

TEST(DirectedPredictor, UnseenVerticesZero) {
  DirectedMinHashPredictor p;
  Feed(p, ReferenceArcs());
  auto est = p.Estimate(50, Direction::kOut, 60, Direction::kIn);
  EXPECT_DOUBLE_EQ(est.jaccard, 0.0);
  EXPECT_DOUBLE_EQ(est.adamic_adar, 0.0);
}

TEST(DirectedPredictor, AgreesWithExactOnWorkloadAtLargeK) {
  // Interpret a BA stream as directed (new vertex -> old vertex).
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 121});
  DirectedMinHashPredictor sketch(DirectedPredictorOptions{256, 3});
  DirectedAdjacencyGraph exact;
  for (const Edge& e : g.edges) {
    sketch.OnEdge(e);
    exact.AddArc(e.u, e.v);
  }
  Rng rng(1);
  double total_error = 0.0;
  int count = 0;
  for (int i = 0; i < 300; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    if (u == v) continue;
    auto truth = exact.ComputeOverlap(u, Direction::kIn, v, Direction::kIn);
    auto est = sketch.Estimate(u, Direction::kIn, v, Direction::kIn);
    total_error += std::abs(est.jaccard - truth.jaccard);
    ++count;
  }
  ASSERT_GT(count, 0);
  EXPECT_LT(total_error / count, 0.03);
}

TEST(DirectedPredictor, MemoryCountsBothSides) {
  DirectedMinHashPredictor p(DirectedPredictorOptions{32, 1});
  Feed(p, ReferenceArcs());
  EXPECT_GT(p.MemoryBytes(), 0u);
  EXPECT_EQ(p.num_vertices(), 5u);
}

}  // namespace
}  // namespace streamlink

// CheckpointManager: periodic crash-safe checkpoints of a live build,
// retention, manifest recovery, restore fallback across corrupt files,
// serving warm start, and the acceptance property of the persistence
// subsystem — kill-and-resume equivalence: an interrupted checkpointed
// build, resumed from its newest checkpoint, saves a snapshot
// byte-identical to the uninterrupted build's.

#include "persist/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "core/minhash_predictor.h"
#include "core/predictor_factory.h"
#include "eval/experiment.h"
#include "gen/workloads.h"
#include "serve/query_service.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "stream/stream_driver.h"

namespace streamlink {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void FlipByteInFile(const std::string& path, size_t offset) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0xff);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ckpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  CheckpointManager MustOpen(uint32_t keep = 3) {
    auto manager = CheckpointManager::Open(CheckpointOptions{dir_, keep});
    SL_CHECK(manager.ok()) << manager.status().ToString();
    return std::move(*manager);
  }

  std::string dir_;
};

TEST_F(CheckpointTest, OpenValidatesOptions) {
  EXPECT_FALSE(CheckpointManager::Open(CheckpointOptions{"", 3}).ok());
  EXPECT_FALSE(CheckpointManager::Open(CheckpointOptions{dir_, 0}).ok());
}

TEST_F(CheckpointTest, WriteThenRestoreRoundTrips) {
  auto manager = MustOpen();
  MinHashPredictor predictor(MinHashPredictorOptions{16, 9});
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.02, 55});
  FeedStream(predictor, g.edges);
  ASSERT_TRUE(manager.Write(predictor, g.edges.size()).ok());
  ASSERT_EQ(manager.entries().size(), 1u);
  EXPECT_EQ(manager.entries()[0].stream_edges, g.edges.size());
  EXPECT_EQ(manager.entries()[0].edges_processed,
            predictor.edges_processed());

  auto restored = manager.RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->entry.stream_edges, g.edges.size());
  EXPECT_EQ(restored->predictor->edges_processed(),
            predictor.edges_processed());
  OverlapEstimate a = predictor.EstimateOverlap(0, 1);
  OverlapEstimate b = restored->predictor->EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(a.jaccard, b.jaccard);
}

TEST_F(CheckpointTest, EmptyDirectoryRestoresNotFound) {
  auto manager = MustOpen();
  auto restored = manager.RestoreLatest();
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, RetentionPrunesOldSnapshots) {
  auto manager = MustOpen(/*keep=*/2);
  MinHashPredictor predictor(MinHashPredictorOptions{8, 9});
  for (uint64_t i = 1; i <= 4; ++i) {
    predictor.OnEdge(Edge(0, static_cast<VertexId>(i)));
    ASSERT_TRUE(manager.Write(predictor, i).ok());
  }
  ASSERT_EQ(manager.entries().size(), 2u);
  EXPECT_EQ(manager.entries()[0].stream_edges, 3u);
  EXPECT_EQ(manager.entries()[1].stream_edges, 4u);
  EXPECT_FALSE(std::filesystem::exists(manager.PathFor(1)));
  EXPECT_FALSE(std::filesystem::exists(manager.PathFor(2)));
  EXPECT_TRUE(std::filesystem::exists(manager.PathFor(3)));
  EXPECT_TRUE(std::filesystem::exists(manager.PathFor(4)));
}

TEST_F(CheckpointTest, CursorMonotonicity) {
  auto manager = MustOpen();
  MinHashPredictor predictor(MinHashPredictorOptions{8, 9});
  predictor.OnEdge(Edge(0, 1));
  ASSERT_TRUE(manager.Write(predictor, 5).ok());
  // Re-publishing the newest position is a no-op, not a duplicate.
  ASSERT_TRUE(manager.Write(predictor, 5).ok());
  EXPECT_EQ(manager.entries().size(), 1u);
  // Going backwards is a caller bug.
  EXPECT_FALSE(manager.Write(predictor, 3).ok());
}

TEST_F(CheckpointTest, ReopenLoadsManifest) {
  {
    auto manager = MustOpen();
    MinHashPredictor predictor(MinHashPredictorOptions{8, 9});
    predictor.OnEdge(Edge(0, 1));
    ASSERT_TRUE(manager.Write(predictor, 10).ok());
    predictor.OnEdge(Edge(1, 2));
    ASSERT_TRUE(manager.Write(predictor, 20).ok());
  }
  auto manager = MustOpen();
  ASSERT_EQ(manager.entries().size(), 2u);
  EXPECT_EQ(manager.entries()[0].stream_edges, 10u);
  EXPECT_EQ(manager.entries()[1].stream_edges, 20u);
  EXPECT_EQ(manager.entries()[1].edges_processed, 2u);
}

TEST_F(CheckpointTest, MissingManifestRecoversByDirectoryScan) {
  {
    auto manager = MustOpen();
    MinHashPredictor predictor(MinHashPredictorOptions{8, 9});
    predictor.OnEdge(Edge(0, 1));
    ASSERT_TRUE(manager.Write(predictor, 10).ok());
    predictor.OnEdge(Edge(1, 2));
    ASSERT_TRUE(manager.Write(predictor, 20).ok());
    std::filesystem::remove(manager.ManifestPath());
  }
  auto manager = MustOpen();
  ASSERT_EQ(manager.entries().size(), 2u);
  EXPECT_EQ(manager.entries()[0].stream_edges, 10u);
  EXPECT_EQ(manager.entries()[1].stream_edges, 20u);
  EXPECT_TRUE(manager.RestoreLatest().ok());
}

TEST_F(CheckpointTest, TornManifestRecoversByDirectoryScan) {
  {
    auto manager = MustOpen();
    MinHashPredictor predictor(MinHashPredictorOptions{8, 9});
    predictor.OnEdge(Edge(0, 1));
    ASSERT_TRUE(manager.Write(predictor, 10).ok());
    // Tear the manifest in half.
    std::string bytes = ReadFileBytes(manager.ManifestPath());
    std::ofstream out(manager.ManifestPath(),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto manager = MustOpen();
  ASSERT_EQ(manager.entries().size(), 1u);
  EXPECT_EQ(manager.entries()[0].stream_edges, 10u);
  EXPECT_TRUE(manager.RestoreLatest().ok());
}

TEST_F(CheckpointTest, CorruptNewestFallsBackToOlder) {
  auto manager = MustOpen();
  MinHashPredictor predictor(MinHashPredictorOptions{8, 9});
  predictor.OnEdge(Edge(0, 1));
  ASSERT_TRUE(manager.Write(predictor, 10).ok());
  predictor.OnEdge(Edge(1, 2));
  ASSERT_TRUE(manager.Write(predictor, 20).ok());
  FlipByteInFile(manager.PathFor(20), 12);

  auto restored = manager.RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->entry.stream_edges, 10u);
  EXPECT_EQ(restored->predictor->edges_processed(), 1u);
}

TEST_F(CheckpointTest, AllCorruptRestoresNotFound) {
  auto manager = MustOpen();
  MinHashPredictor predictor(MinHashPredictorOptions{8, 9});
  predictor.OnEdge(Edge(0, 1));
  ASSERT_TRUE(manager.Write(predictor, 10).ok());
  predictor.OnEdge(Edge(1, 2));
  ASSERT_TRUE(manager.Write(predictor, 20).ok());
  FlipByteInFile(manager.PathFor(10), 9);
  FlipByteInFile(manager.PathFor(20), 9);

  auto restored = manager.RestoreLatest();
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, IngestPublisherCheckpointsTheParallelBuild) {
  auto manager = MustOpen(/*keep=*/16);
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.02, 56});
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 16;
  config.seed = 9;
  config.threads = 2;
  ParallelIngestOptions options;
  options.publish_every_edges = g.edges.size() / 4;
  options.on_publish = manager.IngestPublisher();
  ParallelIngestEngine engine(config, options);
  VectorEdgeStream stream(g.edges);
  auto built = engine.Build(stream);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  ASSERT_FALSE(manager.entries().empty());
  // The end-of-stream publish lands the final checkpoint at the cursor.
  EXPECT_EQ(manager.entries().back().stream_edges, g.edges.size());
  auto restored = manager.RestoreLatest();
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->predictor->edges_processed(),
            (*built)->edges_processed());
}

TEST_F(CheckpointTest, StreamDriverHookCheckpointsSequentialBuild) {
  auto manager = MustOpen();
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.02, 57});
  MinHashPredictor predictor(MinHashPredictorOptions{16, 9});
  StreamDriver driver;
  driver.AddConsumer(&predictor);
  driver.SetCheckpoints({0.5, 1.0}, manager.CheckpointPublisher(predictor));
  VectorEdgeStream stream(g.edges);
  driver.Run(stream);

  ASSERT_EQ(manager.entries().size(), 2u);
  EXPECT_EQ(manager.entries().back().stream_edges, g.edges.size());
}

TEST_F(CheckpointTest, WarmStartPublishesNewestCheckpoint) {
  auto manager = MustOpen();
  MinHashPredictor predictor(MinHashPredictorOptions{16, 9});
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.02, 58});
  FeedStream(predictor, g.edges);
  ASSERT_TRUE(manager.Write(predictor, g.edges.size()).ok());

  QueryService service;
  auto warm = WarmStartFromCheckpoints(manager, service);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(*warm, g.edges.size());
  auto snapshot = service.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->stream_edges, g.edges.size());
  EXPECT_EQ(snapshot->predictor->edges_processed(),
            predictor.edges_processed());
  EXPECT_EQ(service.live_edges(), g.edges.size());

  QueryService cold;
  CheckpointManager empty = [&] {
    auto m = CheckpointManager::Open(
        CheckpointOptions{dir_ + "_empty", 3});
    SL_CHECK(m.ok());
    return std::move(*m);
  }();
  auto miss = WarmStartFromCheckpoints(empty, cold);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir_ + "_empty");
}

// --- Kill-and-resume equivalence ---

TEST_F(CheckpointTest, KillAndResumeMatchesUninterruptedSequentialBuild) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 59});
  const uint64_t total = g.edges.size();
  ASSERT_GT(total, 100u);
  const uint64_t every = total / 5;
  const uint64_t killed_at = total / 2 + 7;  // mid-cadence, past a checkpoint

  // Reference: the uninterrupted sequential build.
  const std::string ref_path = dir_ + "_ref.snap";
  MinHashPredictor reference(MinHashPredictorOptions{16, 9});
  FeedStream(reference, g.edges);
  ASSERT_TRUE(reference.Save(ref_path).ok());

  // Interrupted run: ingest with a checkpoint cadence, then "crash" —
  // simply stop mid-stream, leaving whatever checkpoints were written.
  {
    auto manager = MustOpen();
    MinHashPredictor live(MinHashPredictorOptions{16, 9});
    uint64_t cursor = 0;
    for (const Edge& e : g.edges) {
      if (cursor == killed_at) break;
      live.OnEdge(e);
      ++cursor;
      if (cursor % every == 0) {
        ASSERT_TRUE(manager.Write(live, cursor).ok());
      }
    }
  }

  // Resume in a fresh process image: restore, skip, ingest the rest.
  auto manager = MustOpen();
  auto restored = manager.RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_LT(restored->entry.stream_edges, killed_at);
  std::unique_ptr<LinkPredictor> resumed = std::move(restored->predictor);
  SkipEdgeStream stream(std::make_unique<VectorEdgeStream>(g.edges),
                        restored->entry.stream_edges);
  Edge edge;
  while (stream.Next(&edge)) resumed->OnEdge(edge);

  const std::string resumed_path = dir_ + "_resumed.snap";
  ASSERT_TRUE(resumed->Save(resumed_path).ok());
  EXPECT_EQ(ReadFileBytes(ref_path), ReadFileBytes(resumed_path))
      << "resumed snapshot differs from the uninterrupted build's";
  std::filesystem::remove(ref_path);
  std::filesystem::remove(resumed_path);
}

TEST_F(CheckpointTest, KillAndResumeShardedBuildFoldsIdentically) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 60});
  const uint64_t total = g.edges.size();
  const uint64_t killed_at = total / 2;

  // Reference: uninterrupted sequential build of the same stream.
  const std::string ref_path = dir_ + "_ref.snap";
  MinHashPredictor reference(MinHashPredictorOptions{16, 9});
  FeedStream(reference, g.edges);
  ASSERT_TRUE(reference.Save(ref_path).ok());

  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 16;
  config.seed = 9;
  config.threads = 2;

  // Interrupted parallel run: the engine sees only a prefix of the stream
  // (the "kill"); its end-of-stream publish checkpoints at the prefix end.
  {
    auto manager = MustOpen();
    ParallelIngestOptions options;
    options.publish_every_edges = total;  // only the end-of-stream publish
    options.on_publish = manager.IngestPublisher();
    ParallelIngestEngine engine(config, options);
    PrefixEdgeStream prefix(std::make_unique<VectorEdgeStream>(g.edges),
                            killed_at);
    ASSERT_TRUE(engine.Build(prefix).ok());
  }

  // Resume: restore the sharded container, route the remaining edges
  // through it synchronously, fold, save.
  auto manager = MustOpen();
  auto restored = manager.RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->entry.stream_edges, killed_at);
  std::unique_ptr<LinkPredictor> resumed = std::move(restored->predictor);
  SkipEdgeStream stream(std::make_unique<VectorEdgeStream>(g.edges),
                        restored->entry.stream_edges);
  Edge edge;
  while (stream.Next(&edge)) resumed->OnEdge(edge);
  std::unique_ptr<LinkPredictor> folded = resumed->Clone();
  ASSERT_NE(folded, nullptr);

  const std::string resumed_path = dir_ + "_resumed.snap";
  ASSERT_TRUE(folded->Save(resumed_path).ok());
  EXPECT_EQ(ReadFileBytes(ref_path), ReadFileBytes(resumed_path))
      << "resumed+folded sharded snapshot differs from sequential build's";
  std::filesystem::remove(ref_path);
  std::filesystem::remove(resumed_path);
}

}  // namespace
}  // namespace streamlink

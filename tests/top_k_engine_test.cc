#include "core/top_k_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/exact_predictor.h"
#include "core/minhash_predictor.h"
#include "eval/experiment.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"

namespace streamlink {
namespace {

/// 0-1-2 triangle plus pendant vertices; (0,3) share neighbor 1... builds a
/// graph where exact top-k by common neighbors is known.
EdgeList LadderStream() {
  return {{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}, {3, 4}};
}

TEST(TopKEngine, RanksByScoreDescending) {
  ExactPredictor p;
  FeedStream(p, LadderStream());
  TopKEngine engine(p, LinkMeasure::kCommonNeighbors);
  // Candidates: (0,3) share {1,2} → 2; (0,4) share {} via... N(0)={1,2},
  // N(4)={3} → 0; (1,4) share {3} → 1.
  std::vector<QueryPair> candidates = {{0, 3}, {0, 4}, {1, 4}};
  auto top = engine.TopK(candidates, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].pair, (QueryPair{0, 3}));
  EXPECT_DOUBLE_EQ(top[0].score, 2.0);
  EXPECT_EQ(top[1].pair, (QueryPair{1, 4}));
  EXPECT_DOUBLE_EQ(top[1].score, 1.0);
  EXPECT_DOUBLE_EQ(top[2].score, 0.0);
}

TEST(TopKEngine, TruncatesToK) {
  ExactPredictor p;
  FeedStream(p, LadderStream());
  TopKEngine engine(p, LinkMeasure::kCommonNeighbors);
  std::vector<QueryPair> candidates = {{0, 3}, {0, 4}, {1, 4}};
  EXPECT_EQ(engine.TopK(candidates, 2).size(), 2u);
  EXPECT_EQ(engine.TopK(candidates, 0).size(), 0u);
}

TEST(TopKEngine, TieBreakIsDeterministic) {
  ExactPredictor p;
  FeedStream(p, {{0, 1}});
  TopKEngine engine(p, LinkMeasure::kCommonNeighbors);
  // All scores zero: ties broken lexicographically.
  std::vector<QueryPair> candidates = {{5, 6}, {2, 3}, {2, 9}};
  auto top = engine.TopK(candidates, 3);
  EXPECT_EQ(top[0].pair, (QueryPair{2, 3}));
  EXPECT_EQ(top[1].pair, (QueryPair{2, 9}));
  EXPECT_EQ(top[2].pair, (QueryPair{5, 6}));
}

TEST(TopKEngine, TopKForVertexSkipsSelf) {
  ExactPredictor p;
  FeedStream(p, LadderStream());
  TopKEngine engine(p, LinkMeasure::kCommonNeighbors);
  auto top = engine.TopKForVertex(0, {0, 3, 4}, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].pair.v, 3u);
}

TEST(TwoHopCandidatesFn, FindsDistanceTwoNonEdges) {
  CsrGraph g = CsrGraph::FromEdges(LadderStream());
  // N(0) = {1, 2}; 2-hop: {3} (via 1 or 2). 0-4 is distance 3.
  auto candidates = TwoHopCandidates(g, 0);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].u, 0u);
  EXPECT_EQ(candidates[0].v, 3u);
}

TEST(TwoHopCandidatesFn, RespectsCap) {
  GeneratedGraph wl = MakeWorkload(WorkloadSpec{"ba", 0.02, 61});
  CsrGraph g = CsrGraph::FromEdges(wl.edges, wl.num_vertices);
  auto capped = TwoHopCandidates(g, 0, 5);
  EXPECT_LE(capped.size(), 5u);
}

TEST(TwoHopCandidatesFn, ExcludesExistingEdgesAndSelf) {
  CsrGraph g = CsrGraph::FromEdges(LadderStream());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const QueryPair& p : TwoHopCandidates(g, u)) {
      EXPECT_NE(p.u, p.v);
      EXPECT_FALSE(g.HasEdge(p.u, p.v))
          << "(" << p.u << "," << p.v << ")";
    }
  }
}

TEST(TwoHopCandidatesFnDeathTest, OutOfRangeAborts) {
  CsrGraph g = CsrGraph::FromEdges({{0, 1}});
  EXPECT_DEATH(TwoHopCandidates(g, 9), "out of range");
}

TEST(AllTwoHopCandidatesFn, EmitsEachPairOnce) {
  CsrGraph g = CsrGraph::FromEdges(LadderStream());
  auto all = AllTwoHopCandidates(g);
  for (const QueryPair& p : all) EXPECT_LT(p.u, p.v);
  std::vector<QueryPair> sorted = all;
  std::sort(sorted.begin(), sorted.end(),
            [](const QueryPair& a, const QueryPair& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end(),
                               [](const QueryPair& a, const QueryPair& b) {
                                 return a == b;
                               }),
            sorted.end());
}

TEST(TopKEngine, SketchTopKOverlapsExactTopK) {
  // End-task sanity: the sketch predictor's top-20 (by Jaccard) should
  // substantially overlap the exact top-20 on a clustered graph.
  GeneratedGraph wl = MakeWorkload(WorkloadSpec{"ws", 0.05, 62});
  ExactPredictor exact;
  MinHashPredictor sketch(MinHashPredictorOptions{256, 17});
  FeedStream(exact, wl.edges);
  FeedStream(sketch, wl.edges);

  CsrGraph g = CsrGraph::FromEdges(wl.edges, wl.num_vertices);
  std::vector<QueryPair> candidates;
  for (VertexId u = 0; u < 200; ++u) {
    auto c = TwoHopCandidates(g, u, 20);
    candidates.insert(candidates.end(), c.begin(), c.end());
  }
  ASSERT_GT(candidates.size(), 100u);

  TopKEngine exact_engine(exact, LinkMeasure::kJaccard);
  TopKEngine sketch_engine(sketch, LinkMeasure::kJaccard);
  auto exact_top = exact_engine.TopK(candidates, 20);
  auto sketch_top = sketch_engine.TopK(candidates, 20);

  int overlap = 0;
  for (const auto& a : exact_top) {
    for (const auto& b : sketch_top) {
      if (a.pair == b.pair) ++overlap;
    }
  }
  EXPECT_GE(overlap, 10) << "sketch top-20 diverged from exact top-20";
}

TEST(SketchTwoHop, UnseenVertexHasNoCandidates) {
  MinHashPredictor p;
  FeedStream(p, LadderStream());
  EXPECT_TRUE(SketchTwoHopCandidates(p, 99).empty());
}

TEST(SketchTwoHop, FindsTwoHopWithoutAnySnapshot) {
  // Small-degree graph: the sketches hold full neighborhoods, so the
  // sketch-mined candidate set equals the exact 2-hop set.
  MinHashPredictor p(MinHashPredictorOptions{64, 3});
  FeedStream(p, LadderStream());
  // N(0) = {1,2}; exact 2-hop candidates of 0: {3}.
  auto candidates = SketchTwoHopCandidates(p, 0);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].v, 3u);
}

TEST(SketchTwoHop, ExcludesSelfAndSampledNeighbors) {
  MinHashPredictor p(MinHashPredictorOptions{64, 3});
  FeedStream(p, LadderStream());
  for (VertexId u = 0; u < 5; ++u) {
    for (const QueryPair& c : SketchTwoHopCandidates(p, u)) {
      EXPECT_NE(c.v, u);
    }
  }
}

TEST(SketchTwoHop, RespectsCap) {
  GeneratedGraph wl = MakeWorkload(WorkloadSpec{"ba", 0.03, 63});
  MinHashPredictor p(MinHashPredictorOptions{64, 5});
  FeedStream(p, wl.edges);
  auto capped = SketchTwoHopCandidates(p, 0, 7);
  EXPECT_LE(capped.size(), 7u);
}

TEST(SketchTwoHop, RecallOfTrueTwoHopGrowsWithK) {
  // Sketch-mined candidates are a sample of the true 2-hop set; recall
  // should be substantial at k=64 and grow with k on a moderate graph.
  GeneratedGraph wl = MakeWorkload(WorkloadSpec{"ws", 0.03, 64});
  CsrGraph csr = CsrGraph::FromEdges(wl.edges, wl.num_vertices);

  double prev_recall = -1.0;
  for (uint32_t k : {16u, 64u, 256u}) {
    MinHashPredictor p(MinHashPredictorOptions{k, 7});
    FeedStream(p, wl.edges);
    double recall_sum = 0.0;
    int measured = 0;
    for (VertexId u = 0; u < 50; ++u) {
      auto truth = TwoHopCandidates(csr, u);
      if (truth.empty()) continue;
      std::unordered_set<VertexId> mined;
      for (const QueryPair& c : SketchTwoHopCandidates(p, u)) {
        mined.insert(c.v);
      }
      int hit = 0;
      for (const QueryPair& t : truth) hit += mined.count(t.v) > 0;
      recall_sum += static_cast<double>(hit) / truth.size();
      ++measured;
    }
    ASSERT_GT(measured, 0);
    double recall = recall_sum / measured;
    EXPECT_GT(recall, prev_recall - 0.02) << "k=" << k;
    prev_recall = recall;
    if (k == 256) {
      EXPECT_GT(recall, 0.8);
    }
  }
}

}  // namespace
}  // namespace streamlink

// MetricsRegistry and its metric primitives: sharded counters fold to
// exact totals under concurrent writers, gauges are last-write-wins,
// log2 histograms bucket correctly and answer quantiles within their
// documented 2x bound, and a registry scrape running concurrently with
// hot-path updates is race-free (the concurrency lane runs this binary
// under TSan).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace streamlink {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsFoldToExactTotal) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetIsLastWriteWinsAndAddAccumulates) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(1.5);
  gauge.Set(-3.0);
  EXPECT_EQ(gauge.Value(), -3.0);
  gauge.Add(4.0);
  EXPECT_EQ(gauge.Value(), 1.0);
}

TEST(HistogramTest, BucketsByPowerOfTwo) {
  Histogram hist;
  hist.Record(0);  // value 0 shares bucket 0 with value 1
  hist.Record(1);
  hist.Record(2);
  hist.Record(3);
  hist.Record(1024);
  EXPECT_EQ(hist.Count(), 5u);
  EXPECT_EQ(hist.Sum(), 1030u);
  EXPECT_EQ(hist.BucketCount(0), 2u);   // [1, 2): the 0 and the 1
  EXPECT_EQ(hist.BucketCount(1), 2u);   // [2, 4)
  EXPECT_EQ(hist.BucketCount(10), 1u);  // [1024, 2048)
  EXPECT_EQ(Histogram::BucketUpperBound(0), 2.0);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 2048.0);
}

TEST(HistogramTest, QuantilesWithinOneBucketOfTruth) {
  Histogram hist;
  for (int i = 0; i < 99; ++i) hist.Record(100);  // bucket [64, 128)
  hist.Record(100000);  // bucket [65536, 131072)
  // p50 lands in the bucket holding the bulk; the report is that bucket's
  // upper bound, i.e. within 2x of the true value 100.
  EXPECT_EQ(hist.Percentile(0.5), 128.0);
  EXPECT_EQ(hist.Percentile(0.99), 128.0);
  EXPECT_EQ(hist.Percentile(1.0), 131072.0);
  EXPECT_EQ(hist.MaxUpperBound(), 131072.0);
  EXPECT_NEAR(hist.Mean(), (99 * 100 + 100000) / 100.0, 1e-9);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Mean(), 0.0);
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_EQ(hist.MaxUpperBound(), 0.0);
}

TEST(MetricsRegistryTest, GetReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test.events_total");
  Counter& b = registry.GetCounter("test.events_total");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.Value(), 7u);
  EXPECT_NE(&registry.GetCounter("test.other_total"), &a);
  EXPECT_EQ(&registry.GetGauge("test.depth"), &registry.GetGauge("test.depth"));
  EXPECT_EQ(&registry.GetHistogram("test.ns"),
            &registry.GetHistogram("test.ns"));
}

TEST(MetricsRegistryTest, SnapshotIsNameOrderedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.total").Add(2);
  registry.GetCounter("a.total").Add(1);
  registry.GetGauge("z.gauge").Set(9.0);
  registry.RegisterGaugeFn("m.derived", [] { return 3.5; });
  registry.GetHistogram("h.ns").Record(5);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.total");
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.counters[1].name, "b.total");
  // Settable gauges and scrape-time callbacks merge into one sorted list.
  ASSERT_EQ(snapshot.gauges.size(), 2u);
  EXPECT_EQ(snapshot.gauges[0].name, "m.derived");
  EXPECT_EQ(snapshot.gauges[0].value, 3.5);
  EXPECT_EQ(snapshot.gauges[1].name, "z.gauge");
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "h.ns");
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  ASSERT_EQ(snapshot.histograms[0].buckets.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].buckets[0].first, 8u);  // 5 in [4, 8)
}

TEST(MetricsRegistryTest, ExternalHistogramIsScrapedInPlace) {
  MetricsRegistry registry;
  Histogram latency;
  registry.RegisterHistogram("serve.latency_ns", &latency);
  // Re-registering the same object is a documented no-op.
  registry.RegisterHistogram("serve.latency_ns", &latency);
  latency.Record(1000);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
}

TEST(MetricsRegistryTest, GaugeFnRebindReplacesCallback) {
  MetricsRegistry registry;
  registry.RegisterGaugeFn("x.age", [] { return 1.0; });
  registry.RegisterGaugeFn("x.age", [] { return 2.0; });
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 2.0);
}

// The shape the serving/ingest hot paths exercise: many writer threads
// bumping counters/gauges/histograms while a scraper thread snapshots in
// a loop. Must be TSan-clean; scraped counter values are consistent lower
// bounds, never above the true total.
TEST(MetricsRegistryConcurrencyTest, ScrapeRacesWritersSafely) {
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerThread = 5000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> max_seen{0};

  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      MetricsSnapshot snapshot = registry.Snapshot();
      for (const CounterSample& c : snapshot.counters) {
        uint64_t prev = max_seen.load(std::memory_order_relaxed);
        while (c.value > prev &&
               !max_seen.compare_exchange_weak(prev, c.value)) {
        }
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry, t] {
      // Mix registration (locked) with updates (wait-free) to stress both.
      Counter& counter = registry.GetCounter("stress.events_total");
      Gauge& gauge = registry.GetGauge("stress.depth");
      Histogram& hist =
          registry.GetHistogram("stress.lane" + std::to_string(t) + ".ns");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add();
        gauge.Set(static_cast<double>(i));
        hist.Record(i);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  const uint64_t total = kWriters * kPerThread;
  EXPECT_EQ(registry.GetCounter("stress.events_total").Value(), total);
  EXPECT_LE(max_seen.load(), total);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), static_cast<size_t>(kWriters));
  for (const HistogramSample& h : snapshot.histograms) {
    EXPECT_EQ(h.count, kPerThread);
  }
}

}  // namespace
}  // namespace obs
}  // namespace streamlink

// MetricsRegistry and its metric primitives: sharded counters fold to
// exact totals under concurrent writers, gauges are last-write-wins,
// log2 histograms bucket correctly and answer quantiles with log-linear
// within-bucket interpolation (never leaving the bucket holding the
// rank), and a registry scrape running concurrently with hot-path
// updates is race-free (the concurrency lane runs this binary under
// TSan).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace streamlink {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsFoldToExactTotal) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetIsLastWriteWinsAndAddAccumulates) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(1.5);
  gauge.Set(-3.0);
  EXPECT_EQ(gauge.Value(), -3.0);
  gauge.Add(4.0);
  EXPECT_EQ(gauge.Value(), 1.0);
}

TEST(HistogramTest, BucketsByPowerOfTwo) {
  Histogram hist;
  hist.Record(0);  // value 0 shares bucket 0 with value 1
  hist.Record(1);
  hist.Record(2);
  hist.Record(3);
  hist.Record(1024);
  EXPECT_EQ(hist.Count(), 5u);
  EXPECT_EQ(hist.Sum(), 1030u);
  EXPECT_EQ(hist.BucketCount(0), 2u);   // [1, 2): the 0 and the 1
  EXPECT_EQ(hist.BucketCount(1), 2u);   // [2, 4)
  EXPECT_EQ(hist.BucketCount(10), 1u);  // [1024, 2048)
  EXPECT_EQ(Histogram::BucketUpperBound(0), 2.0);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 2048.0);
}

TEST(HistogramTest, QuantilesInterpolateWithinBucket) {
  Histogram hist;
  for (int i = 0; i < 99; ++i) hist.Record(100);  // bucket [64, 128)
  hist.Record(100000);  // bucket [65536, 131072)
  // p50 lands mid-bucket: log-linear interpolation reports
  // 64 * 2^(50/99) ~ 90.8 — much closer to the true 100 than the old
  // bucket-upper-bound answer of 128, and still inside the bucket.
  EXPECT_NEAR(hist.Percentile(0.5), 64.0 * std::exp2(50.0 / 99.0), 1e-9);
  EXPECT_GE(hist.Percentile(0.5), 64.0);
  EXPECT_LE(hist.Percentile(0.5), 128.0);
  // Rank 99 exhausts the bulk bucket: frac == 1 reports its upper bound.
  EXPECT_EQ(hist.Percentile(0.99), 128.0);
  EXPECT_EQ(hist.Percentile(1.0), 131072.0);
  EXPECT_EQ(hist.MaxUpperBound(), 131072.0);
  EXPECT_NEAR(hist.Mean(), (99 * 100 + 100000) / 100.0, 1e-9);
}

TEST(HistogramTest, BucketZeroInterpolatesLinearly) {
  Histogram hist;
  for (int i = 0; i < 4; ++i) hist.Record(1);  // all in [0, 2)
  EXPECT_EQ(hist.Percentile(0.25), 0.5);  // frac 1/4 of bound 2
  EXPECT_EQ(hist.Percentile(0.5), 1.0);
  EXPECT_EQ(hist.Percentile(1.0), 2.0);
}

TEST(HistogramTest, ConstantDistributionStaysWithinItsBucket) {
  Histogram hist;
  for (int i = 0; i < 1000; ++i) hist.Record(1000);  // bucket [512, 1024)
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_GT(hist.Percentile(p), 512.0) << "p=" << p;
    EXPECT_LE(hist.Percentile(p), 1024.0) << "p=" << p;
  }
}

TEST(HistogramTest, LogUniformDistributionIsNearExact) {
  // Log-linear interpolation is exact for log-uniform mass; a sampled
  // log-uniform set over [2^10, 2^11) should recover every quantile to
  // within a percent or so (discretization of the 1000 samples).
  Histogram hist;
  constexpr int kN = 1000;
  for (int j = 0; j < kN; ++j) {
    const double v = std::ldexp(1.0, 10) *
                     std::exp2((static_cast<double>(j) + 0.5) / kN);
    hist.Record(static_cast<uint64_t>(v));
  }
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double truth = std::ldexp(1.0, 10) * std::exp2(p);
    EXPECT_NEAR(hist.Percentile(p) / truth, 1.0, 0.02) << "p=" << p;
  }
}

TEST(HistogramTest, PercentilesAreMonotoneInP) {
  Histogram hist;
  uint64_t value = 1;
  for (int i = 0; i < 500; ++i) {
    hist.Record(value);
    value = value * 1103515245 % 100000 + 1;
  }
  double prev = 0.0;
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double q = hist.Percentile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Mean(), 0.0);
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_EQ(hist.MaxUpperBound(), 0.0);
}

TEST(MetricsRegistryTest, GetReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test.events_total");
  Counter& b = registry.GetCounter("test.events_total");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.Value(), 7u);
  EXPECT_NE(&registry.GetCounter("test.other_total"), &a);
  EXPECT_EQ(&registry.GetGauge("test.depth"), &registry.GetGauge("test.depth"));
  EXPECT_EQ(&registry.GetHistogram("test.ns"),
            &registry.GetHistogram("test.ns"));
}

TEST(MetricsRegistryTest, SnapshotIsNameOrderedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.total").Add(2);
  registry.GetCounter("a.total").Add(1);
  registry.GetGauge("z.gauge").Set(9.0);
  registry.RegisterGaugeFn("m.derived", [] { return 3.5; });
  registry.GetHistogram("h.ns").Record(5);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.total");
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.counters[1].name, "b.total");
  // Settable gauges and scrape-time callbacks merge into one sorted list.
  ASSERT_EQ(snapshot.gauges.size(), 2u);
  EXPECT_EQ(snapshot.gauges[0].name, "m.derived");
  EXPECT_EQ(snapshot.gauges[0].value, 3.5);
  EXPECT_EQ(snapshot.gauges[1].name, "z.gauge");
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "h.ns");
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  ASSERT_EQ(snapshot.histograms[0].buckets.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].buckets[0].first, 8u);  // 5 in [4, 8)
}

TEST(MetricsRegistryTest, ExternalHistogramIsScrapedInPlace) {
  MetricsRegistry registry;
  Histogram latency;
  registry.RegisterHistogram("serve.latency_ns", &latency);
  // Re-registering the same object is a documented no-op.
  registry.RegisterHistogram("serve.latency_ns", &latency);
  latency.Record(1000);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
}

TEST(MetricsRegistryTest, GaugeFnRebindReplacesCallback) {
  MetricsRegistry registry;
  registry.RegisterGaugeFn("x.age", [] { return 1.0; });
  registry.RegisterGaugeFn("x.age", [] { return 2.0; });
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 2.0);
}

// The shape the serving/ingest hot paths exercise: many writer threads
// bumping counters/gauges/histograms while a scraper thread snapshots in
// a loop. Must be TSan-clean; scraped counter values are consistent lower
// bounds, never above the true total.
TEST(MetricsRegistryConcurrencyTest, ScrapeRacesWritersSafely) {
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerThread = 5000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> max_seen{0};

  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      MetricsSnapshot snapshot = registry.Snapshot();
      for (const CounterSample& c : snapshot.counters) {
        uint64_t prev = max_seen.load(std::memory_order_relaxed);
        while (c.value > prev &&
               !max_seen.compare_exchange_weak(prev, c.value)) {
        }
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry, t] {
      // Mix registration (locked) with updates (wait-free) to stress both.
      Counter& counter = registry.GetCounter("stress.events_total");
      Gauge& gauge = registry.GetGauge("stress.depth");
      Histogram& hist =
          registry.GetHistogram("stress.lane" + std::to_string(t) + ".ns");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add();
        gauge.Set(static_cast<double>(i));
        hist.Record(i);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  const uint64_t total = kWriters * kPerThread;
  EXPECT_EQ(registry.GetCounter("stress.events_total").Value(), total);
  EXPECT_LE(max_seen.load(), total);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), static_cast<size_t>(kWriters));
  for (const HistogramSample& h : snapshot.histograms) {
    EXPECT_EQ(h.count, kPerThread);
  }
}

}  // namespace
}  // namespace obs
}  // namespace streamlink

// Mergeability: predictors built over disjoint stream partitions, merged,
// must equal one predictor that saw the whole stream — the property that
// makes the sketches usable for parallel and distributed ingestion.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/minhash_predictor.h"
#include "eval/experiment.h"
#include "gen/workloads.h"
#include "util/random.h"

namespace streamlink {
namespace {

TEST(Merge, TwoWayPartitionEqualsSinglePass) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 111});
  MinHashPredictorOptions options{64, 3};

  MinHashPredictor single(options);
  FeedStream(single, g.edges);

  MinHashPredictor left(options), right(options);
  size_t half = g.edges.size() / 2;
  FeedStream(left, EdgeList(g.edges.begin(), g.edges.begin() + half));
  FeedStream(right, EdgeList(g.edges.begin() + half, g.edges.end()));
  left.MergeFrom(right);

  EXPECT_EQ(left.edges_processed(), single.edges_processed());
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    OverlapEstimate merged = left.EstimateOverlap(u, v);
    OverlapEstimate reference = single.EstimateOverlap(u, v);
    EXPECT_DOUBLE_EQ(merged.jaccard, reference.jaccard);
    EXPECT_DOUBLE_EQ(merged.intersection, reference.intersection);
    EXPECT_DOUBLE_EQ(merged.adamic_adar, reference.adamic_adar);
    EXPECT_DOUBLE_EQ(merged.degree_u, reference.degree_u);
  }
}

TEST(Merge, ManyWayMergeIsAssociative) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"er", 0.03, 112});
  MinHashPredictorOptions options{32, 7};

  MinHashPredictor single(options);
  FeedStream(single, g.edges);

  const int parts = 5;
  std::vector<MinHashPredictor> shards;
  for (int p = 0; p < parts; ++p) shards.emplace_back(options);
  for (size_t i = 0; i < g.edges.size(); ++i) {
    shards[i % parts].OnEdge(g.edges[i]);
  }
  // Fold in arbitrary order.
  shards[0].MergeFrom(shards[3]);
  shards[1].MergeFrom(shards[4]);
  shards[0].MergeFrom(shards[1]);
  shards[0].MergeFrom(shards[2]);

  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    EXPECT_DOUBLE_EQ(shards[0].EstimateOverlap(u, v).jaccard,
                     single.EstimateOverlap(u, v).jaccard);
  }
}

TEST(Merge, EmptyPeerIsIdentity) {
  MinHashPredictorOptions options{16, 5};
  MinHashPredictor a(options), empty(options);
  FeedStream(a, {{0, 1}, {1, 2}});
  OverlapEstimate before = a.EstimateOverlap(0, 2);
  a.MergeFrom(empty);
  OverlapEstimate after = a.EstimateOverlap(0, 2);
  EXPECT_DOUBLE_EQ(before.jaccard, after.jaccard);
  EXPECT_EQ(a.edges_processed(), 2u);
}

TEST(MergeDeathTest, IncompatibleOptionsAbort) {
  MinHashPredictor a(MinHashPredictorOptions{16, 5});
  MinHashPredictor b(MinHashPredictorOptions{32, 5});
  MinHashPredictor c(MinHashPredictorOptions{16, 6});
  EXPECT_DEATH(a.MergeFrom(b), "different options");
  EXPECT_DEATH(a.MergeFrom(c), "different options");
}

TEST(Merge, ParallelIngestMatchesSequential) {
  // The real use: shards ingest concurrently on threads, then merge.
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.03, 113});
  MinHashPredictorOptions options{32, 9};

  MinHashPredictor single(options);
  FeedStream(single, g.edges);

  const int num_threads = 4;
  std::vector<MinHashPredictor> shards;
  for (int t = 0; t < num_threads; ++t) shards.emplace_back(options);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = t; i < g.edges.size(); i += num_threads) {
          shards[t].OnEdge(g.edges[i]);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  for (int t = 1; t < num_threads; ++t) shards[0].MergeFrom(shards[t]);

  EXPECT_EQ(shards[0].edges_processed(), single.edges_processed());
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    EXPECT_DOUBLE_EQ(shards[0].EstimateOverlap(u, v).jaccard,
                     single.EstimateOverlap(u, v).jaccard);
    EXPECT_DOUBLE_EQ(shards[0].EstimateOverlap(u, v).adamic_adar,
                     single.EstimateOverlap(u, v).adamic_adar);
  }
}

}  // namespace
}  // namespace streamlink

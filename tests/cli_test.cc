#include "cli/commands.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

namespace streamlink {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    // Pid-qualified: each gtest case runs as its own ctest process, and
    // parallel workers share one temp dir.
    std::string prefix = dir_ + "/cli_test_" + std::to_string(::getpid());
    edges_path_ = prefix + "_edges.txt";
    snapshot_path_ = prefix + "_snapshot.bin";
  }
  void TearDown() override {
    std::remove(edges_path_.c_str());
    std::remove(snapshot_path_.c_str());
  }

  Status Run(const std::vector<std::string>& args) {
    out_.str("");
    return RunCliCommand(args, out_);
  }

  std::string output() const { return out_.str(); }

  std::string dir_, edges_path_, snapshot_path_;
  std::ostringstream out_;
};

TEST_F(CliTest, MissingCommandFails) {
  Status s = Run({});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("usage"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_FALSE(Run({"frobnicate"}).ok());
}

TEST_F(CliTest, GenerateWritesEdgeList) {
  Status s = Run({"generate", "--workload=er", "--scale=0.02",
                  "--out=" + edges_path_});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(output().find("wrote"), std::string::npos);
  std::ifstream in(edges_path_);
  EXPECT_TRUE(in.good());
}

TEST_F(CliTest, GenerateRequiresOut) {
  EXPECT_FALSE(Run({"generate", "--workload=er"}).ok());
}

TEST_F(CliTest, GenerateRejectsUnknownWorkload) {
  EXPECT_FALSE(
      Run({"generate", "--workload=nope", "--out=" + edges_path_}).ok());
}

TEST_F(CliTest, GenerateRejectsTypoFlags) {
  Status s = Run({"generate", "--wrkload=er", "--out=" + edges_path_});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("wrkload"), std::string::npos);
}

TEST_F(CliTest, StatsPrintsMetrics) {
  ASSERT_TRUE(Run({"generate", "--workload=ws", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  Status s = Run({"stats", "--input=" + edges_path_});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(output().find("vertices"), std::string::npos);
  EXPECT_NE(output().find("clustering"), std::string::npos);
}

TEST_F(CliTest, StatsMissingFileFails) {
  EXPECT_FALSE(Run({"stats", "--input=/no/such/file"}).ok());
}

TEST_F(CliTest, BuildThenQueryRoundTrips) {
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  Status build = Run({"build", "--input=" + edges_path_, "--k=32",
                      "--snapshot=" + snapshot_path_});
  ASSERT_TRUE(build.ok()) << build.ToString();
  EXPECT_NE(output().find("ingested"), std::string::npos);

  Status query = Run({"query", "--snapshot=" + snapshot_path_,
                      "--pairs=0:1,0:2,5:9"});
  ASSERT_TRUE(query.ok()) << query.ToString();
  EXPECT_NE(output().find("jaccard"), std::string::npos);
  // Three data rows (plus header/rule).
  EXPECT_NE(output().find("5"), std::string::npos);
}

TEST_F(CliTest, QueryRejectsMalformedPairs) {
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  ASSERT_TRUE(Run({"build", "--input=" + edges_path_,
                   "--snapshot=" + snapshot_path_})
                  .ok());
  EXPECT_FALSE(
      Run({"query", "--snapshot=" + snapshot_path_, "--pairs=banana"}).ok());
  EXPECT_FALSE(Run({"query", "--snapshot=" + snapshot_path_}).ok());
}

TEST_F(CliTest, TopKPrintsRecommendations) {
  ASSERT_TRUE(Run({"generate", "--workload=ws", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  Status s = Run({"topk", "--input=" + edges_path_, "--vertex=5", "--top=3",
                  "--measure=jaccard"});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(output().find("candidate"), std::string::npos);
  EXPECT_NE(output().find("jaccard"), std::string::npos);
}

TEST_F(CliTest, TopKRejectsUnknownMeasureAndBadVertex) {
  ASSERT_TRUE(Run({"generate", "--workload=ws", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  EXPECT_FALSE(Run({"topk", "--input=" + edges_path_, "--vertex=5",
                    "--measure=nonsense"})
                   .ok());
  Status s = Run({"topk", "--input=" + edges_path_, "--vertex=99999999"});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}


TEST_F(CliTest, ComparePrintsAllSketchKinds) {
  ASSERT_TRUE(Run({"generate", "--workload=ws", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  Status s = Run({"compare", "--input=" + edges_path_, "--k=32",
                  "--pairs=100"});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(output().find("minhash"), std::string::npos);
  EXPECT_NE(output().find("bottomk"), std::string::npos);
  EXPECT_NE(output().find("vertex_biased"), std::string::npos);
  EXPECT_NE(output().find("oph"), std::string::npos);
}

TEST_F(CliTest, CompareRequiresInput) {
  EXPECT_FALSE(Run({"compare"}).ok());
}

TEST_F(CliTest, BuildAndQueryCoverEveryPredictorKind) {
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  for (const char* kind : {"bottomk", "oph", "exact", "vertex_biased"}) {
    Status build = Run({"build", "--input=" + edges_path_,
                        std::string("--kind=") + kind,
                        "--snapshot=" + snapshot_path_});
    ASSERT_TRUE(build.ok()) << kind << ": " << build.ToString();
    Status query =
        Run({"query", "--snapshot=" + snapshot_path_, "--pairs=0:1,1:2"});
    ASSERT_TRUE(query.ok()) << kind << ": " << query.ToString();
    EXPECT_NE(output().find("jaccard"), std::string::npos);
  }
}

TEST_F(CliTest, BuildCheckpointFlagsRequireDir) {
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  EXPECT_FALSE(Run({"build", "--input=" + edges_path_,
                    "--snapshot=" + snapshot_path_, "--checkpoint-every=100"})
                   .ok());
}

TEST_F(CliTest, InterruptedBuildResumesToIdenticalSnapshot) {
  const std::string ckpt_dir = dir_ + "/cli_test_ckpt";
  const std::string partial_edges = dir_ + "/cli_test_partial.txt";
  const std::string full_snapshot = dir_ + "/cli_test_full.snap";
  std::filesystem::remove_all(ckpt_dir);

  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.03",
                   "--out=" + edges_path_})
                  .ok());
  // The uninterrupted run.
  ASSERT_TRUE(Run({"build", "--input=" + edges_path_, "--k=16", "--seed=9",
                   "--snapshot=" + full_snapshot})
                  .ok());

  // Simulated kill: the interrupted run only ever saw the first half of
  // the stream (a prefix of the file), checkpointing as it went.
  {
    std::ifstream in(edges_path_);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    std::ofstream out(partial_edges);
    for (size_t i = 0; i < lines.size() / 2; ++i) out << lines[i] << "\n";
  }
  Status interrupted =
      Run({"build", "--input=" + partial_edges, "--k=16", "--seed=9",
           "--snapshot=" + snapshot_path_, "--checkpoint-dir=" + ckpt_dir,
           "--checkpoint-every=50"});
  ASSERT_TRUE(interrupted.ok()) << interrupted.ToString();
  EXPECT_NE(output().find("checkpoints"), std::string::npos);

  // Resume against the full stream; the result must be byte-identical to
  // the uninterrupted build's snapshot.
  Status resumed =
      Run({"resume", "--input=" + edges_path_, "--checkpoint-dir=" + ckpt_dir,
           "--snapshot=" + snapshot_path_});
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();
  EXPECT_NE(output().find("resumed"), std::string::npos);

  auto read_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(read_bytes(full_snapshot), read_bytes(snapshot_path_));

  std::filesystem::remove_all(ckpt_dir);
  std::remove(partial_edges.c_str());
  std::remove(full_snapshot.c_str());
}

TEST_F(CliTest, ResumeRequiresCheckpointDir) {
  EXPECT_FALSE(Run({"resume", "--input=" + edges_path_,
                    "--snapshot=" + snapshot_path_})
                   .ok());
}

TEST_F(CliTest, ServeBenchReportsThroughputAndStaleness) {
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.05",
                   "--out=" + edges_path_})
                  .ok());
  Status s = Run({"serve-bench", "--input=" + edges_path_, "--readers=2",
                  "--publish-edges=500", "--threads=2", "--k=16"});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(output().find("qps"), std::string::npos);
  EXPECT_NE(output().find("publishes"), std::string::npos);
  EXPECT_NE(output().find("final_staleness"), std::string::npos);
}

TEST_F(CliTest, ServeBenchRequiresInputAndCadence) {
  EXPECT_FALSE(Run({"serve-bench"}).ok());
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  EXPECT_FALSE(Run({"serve-bench", "--input=" + edges_path_,
                    "--publish-edges=0"})
                   .ok());
}

}  // namespace
}  // namespace streamlink


#include "cli/commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace streamlink {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    edges_path_ = dir_ + "/cli_test_edges.txt";
    snapshot_path_ = dir_ + "/cli_test_snapshot.bin";
  }
  void TearDown() override {
    std::remove(edges_path_.c_str());
    std::remove(snapshot_path_.c_str());
  }

  Status Run(const std::vector<std::string>& args) {
    out_.str("");
    return RunCliCommand(args, out_);
  }

  std::string output() const { return out_.str(); }

  std::string dir_, edges_path_, snapshot_path_;
  std::ostringstream out_;
};

TEST_F(CliTest, MissingCommandFails) {
  Status s = Run({});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("usage"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_FALSE(Run({"frobnicate"}).ok());
}

TEST_F(CliTest, GenerateWritesEdgeList) {
  Status s = Run({"generate", "--workload=er", "--scale=0.02",
                  "--out=" + edges_path_});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(output().find("wrote"), std::string::npos);
  std::ifstream in(edges_path_);
  EXPECT_TRUE(in.good());
}

TEST_F(CliTest, GenerateRequiresOut) {
  EXPECT_FALSE(Run({"generate", "--workload=er"}).ok());
}

TEST_F(CliTest, GenerateRejectsUnknownWorkload) {
  EXPECT_FALSE(
      Run({"generate", "--workload=nope", "--out=" + edges_path_}).ok());
}

TEST_F(CliTest, GenerateRejectsTypoFlags) {
  Status s = Run({"generate", "--wrkload=er", "--out=" + edges_path_});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("wrkload"), std::string::npos);
}

TEST_F(CliTest, StatsPrintsMetrics) {
  ASSERT_TRUE(Run({"generate", "--workload=ws", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  Status s = Run({"stats", "--input=" + edges_path_});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(output().find("vertices"), std::string::npos);
  EXPECT_NE(output().find("clustering"), std::string::npos);
}

TEST_F(CliTest, StatsMissingFileFails) {
  EXPECT_FALSE(Run({"stats", "--input=/no/such/file"}).ok());
}

TEST_F(CliTest, BuildThenQueryRoundTrips) {
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  Status build = Run({"build", "--input=" + edges_path_, "--k=32",
                      "--snapshot=" + snapshot_path_});
  ASSERT_TRUE(build.ok()) << build.ToString();
  EXPECT_NE(output().find("ingested"), std::string::npos);

  Status query = Run({"query", "--snapshot=" + snapshot_path_,
                      "--pairs=0:1,0:2,5:9"});
  ASSERT_TRUE(query.ok()) << query.ToString();
  EXPECT_NE(output().find("jaccard"), std::string::npos);
  // Three data rows (plus header/rule).
  EXPECT_NE(output().find("5"), std::string::npos);
}

TEST_F(CliTest, QueryRejectsMalformedPairs) {
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  ASSERT_TRUE(Run({"build", "--input=" + edges_path_,
                   "--snapshot=" + snapshot_path_})
                  .ok());
  EXPECT_FALSE(
      Run({"query", "--snapshot=" + snapshot_path_, "--pairs=banana"}).ok());
  EXPECT_FALSE(Run({"query", "--snapshot=" + snapshot_path_}).ok());
}

TEST_F(CliTest, TopKPrintsRecommendations) {
  ASSERT_TRUE(Run({"generate", "--workload=ws", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  Status s = Run({"topk", "--input=" + edges_path_, "--vertex=5", "--top=3",
                  "--measure=jaccard"});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(output().find("candidate"), std::string::npos);
  EXPECT_NE(output().find("jaccard"), std::string::npos);
}

TEST_F(CliTest, TopKRejectsUnknownMeasureAndBadVertex) {
  ASSERT_TRUE(Run({"generate", "--workload=ws", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  EXPECT_FALSE(Run({"topk", "--input=" + edges_path_, "--vertex=5",
                    "--measure=nonsense"})
                   .ok());
  Status s = Run({"topk", "--input=" + edges_path_, "--vertex=99999999"});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}


TEST_F(CliTest, ComparePrintsAllSketchKinds) {
  ASSERT_TRUE(Run({"generate", "--workload=ws", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  Status s = Run({"compare", "--input=" + edges_path_, "--k=32",
                  "--pairs=100"});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(output().find("minhash"), std::string::npos);
  EXPECT_NE(output().find("bottomk"), std::string::npos);
  EXPECT_NE(output().find("vertex_biased"), std::string::npos);
  EXPECT_NE(output().find("oph"), std::string::npos);
}

TEST_F(CliTest, CompareRequiresInput) {
  EXPECT_FALSE(Run({"compare"}).ok());
}

TEST_F(CliTest, BuildRejectsNonMinhashKind) {
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  Status s = Run({"build", "--input=" + edges_path_, "--kind=bottomk",
                  "--snapshot=" + snapshot_path_});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("minhash"), std::string::npos);
}

TEST_F(CliTest, ServeBenchReportsThroughputAndStaleness) {
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.05",
                   "--out=" + edges_path_})
                  .ok());
  Status s = Run({"serve-bench", "--input=" + edges_path_, "--readers=2",
                  "--publish-edges=500", "--threads=2", "--k=16"});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(output().find("qps"), std::string::npos);
  EXPECT_NE(output().find("publishes"), std::string::npos);
  EXPECT_NE(output().find("final_staleness"), std::string::npos);
}

TEST_F(CliTest, ServeBenchRequiresInputAndCadence) {
  EXPECT_FALSE(Run({"serve-bench"}).ok());
  ASSERT_TRUE(Run({"generate", "--workload=ba", "--scale=0.02",
                   "--out=" + edges_path_})
                  .ok());
  EXPECT_FALSE(Run({"serve-bench", "--input=" + edges_path_,
                    "--publish-edges=0"})
                   .ok());
}

}  // namespace
}  // namespace streamlink


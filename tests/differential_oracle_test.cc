// Differential oracle: every sketch predictor kind, fed the same seeded
// stream as the exact predictor, must keep its per-query Jaccard and
// common-neighbor errors inside the Chernoff-style tolerance from
// core/error_bounds — with at most the statistically-allowed number of
// per-query violations. This is the paper's central claim, asserted
// automatically across kinds, stream orders, and thread counts.

#include <gtest/gtest.h>

#include "core/error_bounds.h"
#include "core/predictor_factory.h"
#include "verify/differential.h"

namespace streamlink {
namespace {

/// Every kind the factory registers must appear in the report exactly
/// once and pass; on failure the full per-kind table goes to the log.
void ExpectAllKindsPass(const DifferentialOracleOptions& options) {
  auto report = RunDifferentialOracle(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->kinds.size(),
            options.kinds.empty() ? PredictorKinds().size()
                                  : options.kinds.size());
  EXPECT_TRUE(report->all_passed) << FormatReport(*report);
  for (const DifferentialKindReport& kr : report->kinds) {
    EXPECT_TRUE(kr.passed) << kr.detail;
    EXPECT_EQ(kr.malformed_estimates, 0u) << kr.kind;
    EXPECT_EQ(kr.queries, options.query_pairs);
  }
}

TEST(DifferentialOracle, AllKindsWithinBoundsOnDefaultStream) {
  ExpectAllKindsPass(DifferentialOracleOptions{});
}

TEST(DifferentialOracle, ExactKindIsPointwiseExact) {
  DifferentialOracleOptions options;
  options.kinds = {"exact"};
  auto report = RunDifferentialOracle(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->kinds.size(), 1u);
  const DifferentialKindReport& kr = report->kinds[0];
  // The oracle self-test: epsilon 0, zero allowance, zero violations.
  EXPECT_EQ(kr.epsilon, 0.0);
  EXPECT_EQ(kr.allowed_violations, 0u);
  EXPECT_EQ(kr.jaccard_violations, 0u);
  EXPECT_EQ(kr.common_neighbor_violations, 0u);
  EXPECT_EQ(kr.max_jaccard_error, 0.0);
  EXPECT_TRUE(kr.passed);
}

TEST(DifferentialOracle, HoldsAcrossStreamOrders) {
  // Arrival order must not move any estimator outside its bound —
  // the robustness half of the paper's claim.
  for (StreamOrder order : {StreamOrder::kRandom, StreamOrder::kSortedBySource,
                            StreamOrder::kReversed}) {
    DifferentialOracleOptions options;
    options.order = order;
    options.scale = 0.03;
    options.query_pairs = 192;
    ExpectAllKindsPass(options);
  }
}

TEST(DifferentialOracle, HoldsAcrossWorkloadFamilies) {
  for (const char* workload : {"er", "ws", "sbm"}) {
    DifferentialOracleOptions options;
    options.workload = workload;
    options.scale = 0.03;
    options.query_pairs = 192;
    ExpectAllKindsPass(options);
  }
}

TEST(DifferentialOracle, ShardedBuildsObeyTheSameTolerance) {
  // threads > 1 builds are bit-identical to sequential (PR 1), so the
  // statistical tolerance carries over unchanged.
  DifferentialOracleOptions options;
  options.threads = 3;
  options.scale = 0.03;
  options.query_pairs = 192;
  ExpectAllKindsPass(options);
}

TEST(DifferentialOracle, RelaxedBuildsObeyTheSameTolerance) {
  // The relaxed mode's whole contract: edge-partitioned replica builds
  // merged at end-of-stream must stay inside the same Hoeffding
  // tolerances as a sequential build. Kinds without a replica merge fall
  // back to sequential inside the oracle, so the sweep stays complete.
  for (uint32_t threads : {2u, 4u}) {
    DifferentialOracleOptions options;
    options.threads = threads;
    options.ordering = IngestOrdering::kRelaxed;
    options.scale = 0.03;
    options.query_pairs = 192;
    ExpectAllKindsPass(options);
  }
}

TEST(DifferentialOracle, RelaxedIsDeterministic) {
  // Replica fold order is fixed (replica 0 absorbs 1..N-1), so even the
  // relaxed mode reproduces bit-for-bit given the same options.
  DifferentialOracleOptions options;
  options.threads = 4;
  options.ordering = IngestOrdering::kRelaxed;
  options.scale = 0.03;
  options.query_pairs = 128;
  options.kinds = {"minhash", "bottomk"};
  auto first = RunDifferentialOracle(options);
  auto second = RunDifferentialOracle(options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->kinds.size(), second->kinds.size());
  for (size_t i = 0; i < first->kinds.size(); ++i) {
    EXPECT_TRUE(first->kinds[i].passed) << first->kinds[i].detail;
    EXPECT_EQ(first->kinds[i].max_jaccard_error,
              second->kinds[i].max_jaccard_error);
    EXPECT_EQ(first->kinds[i].mean_jaccard_error,
              second->kinds[i].mean_jaccard_error);
  }
}

TEST(DifferentialOracle, ToleranceIsNotVacuous) {
  // Guard against a silently-degenerate oracle: at k=128 slots the
  // per-query tolerance must stay well below the trivial bound of 1.0
  // and the violation allowance well below the query count.
  DifferentialOracleOptions options;
  auto report = RunDifferentialOracle(options);
  ASSERT_TRUE(report.ok());
  for (const DifferentialKindReport& kr : report->kinds) {
    if (kr.kind == "exact") continue;
    EXPECT_GT(kr.epsilon, 0.0) << kr.kind;
    EXPECT_LT(kr.epsilon, 0.25) << kr.kind;
    EXPECT_LT(kr.allowed_violations, kr.queries / 4) << kr.kind;
  }
}

TEST(DifferentialOracle, RejectsDegenerateConfigs) {
  DifferentialOracleOptions tiny;
  tiny.sketch_size = 2;
  EXPECT_EQ(RunDifferentialOracle(tiny).status().code(),
            StatusCode::kInvalidArgument);

  DifferentialOracleOptions no_queries;
  no_queries.query_pairs = 0;
  EXPECT_EQ(RunDifferentialOracle(no_queries).status().code(),
            StatusCode::kInvalidArgument);

  DifferentialOracleOptions bad_kind;
  bad_kind.kinds = {"alien"};
  EXPECT_EQ(RunDifferentialOracle(bad_kind).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DifferentialOracle, IsDeterministic) {
  DifferentialOracleOptions options;
  options.scale = 0.03;
  options.query_pairs = 128;
  auto first = RunDifferentialOracle(options);
  auto second = RunDifferentialOracle(options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->kinds.size(), second->kinds.size());
  for (size_t i = 0; i < first->kinds.size(); ++i) {
    EXPECT_EQ(first->kinds[i].jaccard_violations,
              second->kinds[i].jaccard_violations);
    EXPECT_EQ(first->kinds[i].max_jaccard_error,
              second->kinds[i].max_jaccard_error);
    EXPECT_EQ(first->kinds[i].mean_jaccard_error,
              second->kinds[i].mean_jaccard_error);
  }
}

}  // namespace
}  // namespace streamlink

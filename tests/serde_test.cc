#include "util/serde.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/minhash_predictor.h"
#include "eval/experiment.h"
#include "gen/workloads.h"
#include "util/random.h"

namespace streamlink {
namespace {

class SerdeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/serde_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SerdeTest, PrimitivesRoundTrip) {
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.status().ok());
    w.WriteU32(0xdeadbeef);
    w.WriteU64(0x0123456789abcdefULL);
    w.WriteDouble(3.14159);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 3.14159);
  EXPECT_TRUE(r.ok());
}

TEST_F(SerdeTest, VectorsRoundTrip) {
  std::vector<uint32_t> ints = {1, 2, 3, 4, 5};
  std::vector<double> empty;
  {
    BinaryWriter w(path_);
    w.WriteVector(ints);
    w.WriteVector(empty);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.ReadVector<uint32_t>(), ints);
  EXPECT_TRUE(r.ReadVector<double>().empty());
  EXPECT_TRUE(r.ok());
}

TEST_F(SerdeTest, TruncationIsDetected) {
  {
    BinaryWriter w(path_);
    w.WriteU32(7);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path_);
  r.ReadU32();
  EXPECT_TRUE(r.ok());
  r.ReadU64();  // past the end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  // Subsequent reads stay failed and return zero.
  EXPECT_EQ(r.ReadU32(), 0u);
}

TEST_F(SerdeTest, ImplausibleVectorSizeIsRejected) {
  {
    BinaryWriter w(path_);
    w.WriteU64(~0ULL);  // absurd element count
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path_);
  auto v = r.ReadVector<uint64_t>();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(SerdeErrors, MissingFile) {
  BinaryReader r("/nonexistent/snapshot.bin");
  EXPECT_FALSE(r.ok());
  BinaryWriter w("/nonexistent-dir-abc/out.bin");
  EXPECT_FALSE(w.status().ok());
}

class MinHashSnapshotTest : public SerdeTest {};

TEST_F(MinHashSnapshotTest, SaveLoadPreservesEveryEstimate) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 101});
  MinHashPredictor original(MinHashPredictorOptions{64, 9});
  FeedStream(original, g.edges);
  ASSERT_TRUE(original.Save(path_).ok());

  auto loaded = MinHashPredictor::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->edges_processed(), original.edges_processed());
  EXPECT_EQ(loaded->num_vertices(), original.num_vertices());

  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    OverlapEstimate a = original.EstimateOverlap(u, v);
    OverlapEstimate b = loaded->EstimateOverlap(u, v);
    EXPECT_DOUBLE_EQ(a.jaccard, b.jaccard);
    EXPECT_DOUBLE_EQ(a.intersection, b.intersection);
    EXPECT_DOUBLE_EQ(a.adamic_adar, b.adamic_adar);
  }
}

TEST_F(MinHashSnapshotTest, LoadedPredictorKeepsIngesting) {
  MinHashPredictor original(MinHashPredictorOptions{32, 9});
  FeedStream(original, {{0, 1}, {0, 2}});
  ASSERT_TRUE(original.Save(path_).ok());

  auto loaded = MinHashPredictor::Load(path_);
  ASSERT_TRUE(loaded.ok());
  loaded->OnEdge(Edge(1, 2));

  MinHashPredictor reference(MinHashPredictorOptions{32, 9});
  FeedStream(reference, {{0, 1}, {0, 2}, {1, 2}});
  OverlapEstimate a = loaded->EstimateOverlap(0, 1);
  OverlapEstimate b = reference.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(a.jaccard, b.jaccard);
  EXPECT_DOUBLE_EQ(a.intersection, b.intersection);
}

TEST_F(MinHashSnapshotTest, GarbageFileIsRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a snapshot at all";
  }
  auto loaded = MinHashPredictor::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MinHashSnapshotTest, TruncatedSnapshotIsRejected) {
  MinHashPredictor original(MinHashPredictorOptions{32, 9});
  FeedStream(original, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(original.Save(path_).ok());

  // Truncate the file to half its size.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), contents.size() / 2);
  }
  auto loaded = MinHashPredictor::Load(path_);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace streamlink

#include "util/serde.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/minhash_predictor.h"
#include "eval/experiment.h"
#include "gen/workloads.h"
#include "util/random.h"

namespace streamlink {
namespace {

class SerdeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified: each gtest case runs as its own ctest process, and
    // parallel workers share one temp dir.
    path_ = ::testing::TempDir() + "/serde_test_" +
            std::to_string(::getpid()) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SerdeTest, PrimitivesRoundTrip) {
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.status().ok());
    w.WriteU32(0xdeadbeef);
    w.WriteU64(0x0123456789abcdefULL);
    w.WriteDouble(3.14159);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 3.14159);
  EXPECT_TRUE(r.ok());
}

TEST_F(SerdeTest, VectorsRoundTrip) {
  std::vector<uint32_t> ints = {1, 2, 3, 4, 5};
  std::vector<double> empty;
  {
    BinaryWriter w(path_);
    w.WriteVector(ints);
    w.WriteVector(empty);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.ReadVector<uint32_t>(), ints);
  EXPECT_TRUE(r.ReadVector<double>().empty());
  EXPECT_TRUE(r.ok());
}

TEST_F(SerdeTest, TruncationIsDetected) {
  {
    BinaryWriter w(path_);
    w.WriteU32(7);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path_);
  r.ReadU32();
  EXPECT_TRUE(r.ok());
  r.ReadU64();  // past the end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  // Subsequent reads stay failed and return zero.
  EXPECT_EQ(r.ReadU32(), 0u);
}

TEST_F(SerdeTest, ImplausibleVectorSizeIsRejected) {
  {
    BinaryWriter w(path_);
    w.WriteU64(~0ULL);  // absurd element count
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path_);
  auto v = r.ReadVector<uint64_t>();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST_F(SerdeTest, StringsRoundTrip) {
  {
    BinaryWriter w(path_);
    w.WriteString("minhash");
    w.WriteString("");
    w.WriteString(std::string("\0binary\xff", 8));
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.ReadString(), "minhash");
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_EQ(r.ReadString(), std::string("\0binary\xff", 8));
  EXPECT_TRUE(r.ok());
}

TEST_F(SerdeTest, OverflowingVectorSizeIsRejected) {
  // Regression: 0x2000000000000001 * sizeof(uint64_t) wraps to 8, so a
  // product-form guard (size * sizeof(T) > cap) would accept it and
  // resize() would abort. The division-form guard must reject it cleanly.
  {
    BinaryWriter w(path_);
    w.WriteU64(0x2000000000000001ULL);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path_);
  auto v = r.ReadVector<uint64_t>();
  EXPECT_TRUE(v.empty());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_NE(r.status().message().find("implausible"), std::string::npos);
}

TEST_F(SerdeTest, ChecksumFooterDetectsEveryByteFlip) {
  {
    BinaryWriter w(path_);
    w.WriteU32(7);
    w.WriteVector(std::vector<uint64_t>{1, 2, 3});
    w.WriteChecksumFooter();
    ASSERT_TRUE(w.Finish().ok());
  }
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  auto verify = [this]() {
    BinaryReader r(path_);
    r.ReadU32();
    r.ReadVector<uint64_t>();
    return r.VerifyChecksumFooter();
  };
  ASSERT_TRUE(verify().ok());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0xff);
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
    }
    EXPECT_FALSE(verify().ok()) << "flip at offset " << i << " undetected";
  }
}

TEST_F(SerdeTest, ChecksumFooterRejectsTrailingGarbage) {
  {
    BinaryWriter w(path_);
    w.WriteU32(7);
    w.WriteChecksumFooter();
    ASSERT_TRUE(w.Finish().ok());
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "extra";
  }
  BinaryReader r(path_);
  r.ReadU32();
  EXPECT_FALSE(r.VerifyChecksumFooter().ok());
}

TEST_F(SerdeTest, WriteFileAtomicCommitsAndCleansUp) {
  ASSERT_TRUE(WriteFileAtomic(path_, [](BinaryWriter& w) {
                w.WriteU32(42);
                return w.status();
              }).ok());
  EXPECT_FALSE(std::ifstream(path_ + ".tmp").good()) << "temp file leaked";
  BinaryReader r(path_);
  EXPECT_EQ(r.ReadU32(), 42u);
  ASSERT_TRUE(r.VerifyChecksumFooter().ok());  // footer appended for us
}

TEST_F(SerdeTest, WriteFileAtomicFailureLeavesOldFileIntact) {
  ASSERT_TRUE(WriteFileAtomic(path_, [](BinaryWriter& w) {
                w.WriteU32(1);
                return w.status();
              }).ok());
  Status st = WriteFileAtomic(path_, [](BinaryWriter& w) {
    w.WriteU32(2);
    return Status::Internal("fill failed midway");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(std::ifstream(path_ + ".tmp").good()) << "temp file leaked";
  BinaryReader r(path_);
  EXPECT_EQ(r.ReadU32(), 1u) << "failed rewrite clobbered the old file";
  EXPECT_TRUE(r.VerifyChecksumFooter().ok());
}

TEST(SerdeErrors, MissingFile) {
  BinaryReader r("/nonexistent/snapshot.bin");
  EXPECT_FALSE(r.ok());
  BinaryWriter w("/nonexistent-dir-abc/out.bin");
  EXPECT_FALSE(w.status().ok());
}

class MinHashSnapshotTest : public SerdeTest {};

TEST_F(MinHashSnapshotTest, SaveLoadPreservesEveryEstimate) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 101});
  MinHashPredictor original(MinHashPredictorOptions{64, 9});
  FeedStream(original, g.edges);
  ASSERT_TRUE(original.Save(path_).ok());

  auto loaded = MinHashPredictor::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->edges_processed(), original.edges_processed());
  EXPECT_EQ(loaded->num_vertices(), original.num_vertices());

  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    OverlapEstimate a = original.EstimateOverlap(u, v);
    OverlapEstimate b = loaded->EstimateOverlap(u, v);
    EXPECT_DOUBLE_EQ(a.jaccard, b.jaccard);
    EXPECT_DOUBLE_EQ(a.intersection, b.intersection);
    EXPECT_DOUBLE_EQ(a.adamic_adar, b.adamic_adar);
  }
}

TEST_F(MinHashSnapshotTest, LoadedPredictorKeepsIngesting) {
  MinHashPredictor original(MinHashPredictorOptions{32, 9});
  FeedStream(original, {{0, 1}, {0, 2}});
  ASSERT_TRUE(original.Save(path_).ok());

  auto loaded = MinHashPredictor::Load(path_);
  ASSERT_TRUE(loaded.ok());
  loaded->OnEdge(Edge(1, 2));

  MinHashPredictor reference(MinHashPredictorOptions{32, 9});
  FeedStream(reference, {{0, 1}, {0, 2}, {1, 2}});
  OverlapEstimate a = loaded->EstimateOverlap(0, 1);
  OverlapEstimate b = reference.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(a.jaccard, b.jaccard);
  EXPECT_DOUBLE_EQ(a.intersection, b.intersection);
}

TEST_F(MinHashSnapshotTest, GarbageFileIsRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a snapshot at all";
  }
  auto loaded = MinHashPredictor::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MinHashSnapshotTest, TruncatedSnapshotIsRejected) {
  MinHashPredictor original(MinHashPredictorOptions{32, 9});
  FeedStream(original, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(original.Save(path_).ok());

  // Truncate the file to half its size.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), contents.size() / 2);
  }
  auto loaded = MinHashPredictor::Load(path_);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace streamlink

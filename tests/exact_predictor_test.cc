#include "core/exact_predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/experiment.h"
#include "gen/workloads.h"
#include "graph/exact_measures.h"
#include "util/random.h"

namespace streamlink {
namespace {

TEST(ExactPredictor, NameIsExact) {
  ExactPredictor p;
  EXPECT_EQ(p.name(), "exact");
}

TEST(ExactPredictor, MatchesComputeOverlapEverywhere) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"sbm", 0.02, 51});
  ExactPredictor p;
  FeedStream(p, g.edges);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    PairOverlap truth = ComputeOverlap(p.graph(), u, v);
    OverlapEstimate est = p.EstimateOverlap(u, v);
    EXPECT_DOUBLE_EQ(est.degree_u, truth.degree_u);
    EXPECT_DOUBLE_EQ(est.degree_v, truth.degree_v);
    EXPECT_DOUBLE_EQ(est.intersection, truth.intersection);
    EXPECT_DOUBLE_EQ(est.union_size, truth.union_size);
    EXPECT_DOUBLE_EQ(est.jaccard, truth.Jaccard());
    EXPECT_DOUBLE_EQ(est.adamic_adar, truth.adamic_adar);
  }
}

TEST(ExactPredictor, DuplicateEdgesAreIdempotent) {
  ExactPredictor p;
  FeedStream(p, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(p.graph().num_edges(), 1u);
  EXPECT_DOUBLE_EQ(p.EstimateOverlap(0, 1).degree_u, 1.0);
}

TEST(ExactPredictor, MemoryGrowsWithDegreeUnlikeSketches) {
  // The contrast the paper draws: exact state grows with average degree.
  ExactPredictor sparse, dense;
  EdgeList path, dense_edges;
  for (VertexId i = 0; i + 1 < 500; ++i) path.push_back({i, i + 1});
  for (VertexId i = 0; i < 500; ++i) {
    for (VertexId j = 1; j <= 20; ++j) {
      dense_edges.push_back({i, static_cast<VertexId>((i + j * 37) % 500)});
    }
  }
  FeedStream(sparse, path);
  FeedStream(dense, dense_edges);
  double sparse_pv =
      static_cast<double>(sparse.MemoryBytes()) / sparse.num_vertices();
  double dense_pv =
      static_cast<double>(dense.MemoryBytes()) / dense.num_vertices();
  EXPECT_GT(dense_pv, 3.0 * sparse_pv);
}

TEST(MeasureFromEstimate, DerivedMeasuresFromEstimateFields) {
  OverlapEstimate e;
  e.degree_u = 4;
  e.degree_v = 9;
  e.intersection = 3;
  e.union_size = 10;
  e.jaccard = 0.3;
  e.adamic_adar = 1.7;
  e.resource_allocation = 0.6;
  EXPECT_DOUBLE_EQ(MeasureFromEstimate(LinkMeasure::kCommonNeighbors, e), 3.0);
  EXPECT_DOUBLE_EQ(MeasureFromEstimate(LinkMeasure::kJaccard, e), 0.3);
  EXPECT_DOUBLE_EQ(MeasureFromEstimate(LinkMeasure::kAdamicAdar, e), 1.7);
  EXPECT_DOUBLE_EQ(
      MeasureFromEstimate(LinkMeasure::kResourceAllocation, e), 0.6);
  EXPECT_DOUBLE_EQ(
      MeasureFromEstimate(LinkMeasure::kPreferentialAttachment, e), 36.0);
  EXPECT_DOUBLE_EQ(MeasureFromEstimate(LinkMeasure::kSalton, e), 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(MeasureFromEstimate(LinkMeasure::kSorensen, e),
                   6.0 / 13.0);
  EXPECT_DOUBLE_EQ(MeasureFromEstimate(LinkMeasure::kHubPromoted, e),
                   3.0 / 4.0);
  EXPECT_DOUBLE_EQ(MeasureFromEstimate(LinkMeasure::kHubDepressed, e),
                   3.0 / 9.0);
  EXPECT_DOUBLE_EQ(MeasureFromEstimate(LinkMeasure::kLeichtHolmeNewman, e),
                   3.0 / 36.0);
}

TEST(MeasureFromEstimate, ZeroDegreesYieldZeroNotNan) {
  OverlapEstimate e;  // all zero
  for (LinkMeasure m : AllLinkMeasures()) {
    double v = MeasureFromEstimate(m, e);
    EXPECT_EQ(v, 0.0) << LinkMeasureName(m);
    EXPECT_FALSE(std::isnan(v)) << LinkMeasureName(m);
  }
}

}  // namespace
}  // namespace streamlink

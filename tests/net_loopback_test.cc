#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/predictor_factory.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/query_service.h"
#include "util/logging.h"
#include "util/random.h"

namespace streamlink {
namespace net {
namespace {

constexpr VertexId kVertices = 64;
constexpr size_t kEdges = 800;

std::unique_ptr<LinkPredictor> BuildPredictor() {
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 32;
  config.seed = 11;
  auto predictor = MakePredictor(config);
  SL_CHECK(predictor.ok());
  Rng rng(99);
  for (size_t i = 0; i < kEdges; ++i) {
    Edge edge(static_cast<VertexId>(rng.NextBounded(kVertices)),
              static_cast<VertexId>(rng.NextBounded(kVertices)));
    (*predictor)->OnEdge(edge);
  }
  return std::move(*predictor);
}

QueryRequest MakeRequest(uint64_t seed, uint32_t pairs) {
  Rng rng(seed);
  QueryRequest request;
  request.measures = {LinkMeasure::kJaccard, LinkMeasure::kAdamicAdar};
  for (uint32_t i = 0; i < pairs; ++i) {
    QueryPair pair;
    pair.u = static_cast<VertexId>(rng.NextBounded(kVertices));
    pair.v = static_cast<VertexId>(rng.NextBounded(kVertices));
    if (pair.u == pair.v) pair.v = (pair.v + 1) % kVertices;
    request.pairs.push_back(pair);
  }
  return request;
}

struct Harness {
  std::unique_ptr<LinkPredictor> predictor;
  std::unique_ptr<QueryService> service;
  obs::MetricsRegistry registry;
  NetServer server;

  explicit Harness(NetServerOptions options = {}) {
    predictor = BuildPredictor();
    auto built = QueryServiceBuilder()
                     .InitialSnapshot(*predictor, kEdges)
                     .Build();
    SL_CHECK(built.ok());
    service = std::move(*built);
    options.metrics = &registry;
    Status st = server.Start(*service, std::move(options));
    SL_CHECK(st.ok()) << st.ToString();
  }
};

TEST(NetLoopback, PingPong) {
  Harness harness;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetLoopback, NetworkedAnswersMatchInProcess) {
  Harness harness;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server.port()).ok());

  const QueryRequest request = MakeRequest(/*seed=*/5, /*pairs=*/12);
  Result<QueryResult> local = harness.service->Query(request);
  ASSERT_TRUE(local.ok());

  Result<CallOutcome> remote = client.Call(request);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_FALSE(remote->nacked);
  const QueryResult& got = remote->result;
  EXPECT_EQ(got.meta.snapshot_version, local->meta.snapshot_version);
  EXPECT_EQ(got.meta.snapshot_edges, local->meta.snapshot_edges);
  ASSERT_EQ(got.pairs.size(), local->pairs.size());
  for (size_t i = 0; i < got.pairs.size(); ++i) {
    EXPECT_EQ(got.pairs[i].pair.u, local->pairs[i].pair.u);
    EXPECT_EQ(got.pairs[i].pair.v, local->pairs[i].pair.v);
    ASSERT_EQ(got.pairs[i].scores.size(), local->pairs[i].scores.size());
    for (size_t s = 0; s < got.pairs[i].scores.size(); ++s) {
      EXPECT_EQ(got.pairs[i].scores[s], local->pairs[i].scores[s]);
    }
  }
}

TEST(NetLoopback, ManySequentialCallsOnOneConnection) {
  Harness harness;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server.port()).ok());
  for (uint64_t i = 0; i < 50; ++i) {
    Result<CallOutcome> outcome = client.Call(MakeRequest(i, 4));
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_FALSE(outcome->nacked);
    EXPECT_EQ(outcome->result.pairs.size(), 4u);
  }
}

TEST(NetLoopback, ConcurrentClientsAllGetCorrectAnswers) {
  Harness harness;
  constexpr int kClients = 4;
  constexpr int kCallsEach = 25;
  std::vector<std::thread> threads;
  std::vector<uint64_t> ok(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&harness, &ok, c] {
      NetClient client;
      if (!client.Connect("127.0.0.1", harness.server.port()).ok()) return;
      for (int i = 0; i < kCallsEach; ++i) {
        Result<CallOutcome> outcome =
            client.Call(MakeRequest(c * 1000 + i, 6));
        if (outcome.ok() && !outcome->nacked &&
            outcome->result.pairs.size() == 6) {
          ok[c]++;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok[c], static_cast<uint64_t>(kCallsEach)) << "client " << c;
  }
  // Metrics saw the traffic.
  obs::MetricsSnapshot snap = harness.registry.Snapshot();
  auto counter = [&snap](const std::string& name) -> uint64_t {
    for (const auto& sample : snap.counters) {
      if (sample.name == name) return sample.value;
    }
    return 0;
  };
  EXPECT_GE(counter("net.requests_admitted_total"),
            static_cast<uint64_t>(kClients * kCallsEach));
  EXPECT_GE(counter("net.connections_total"),
            static_cast<uint64_t>(kClients));
}

TEST(NetLoopback, MalformedBytesCloseTheConnection) {
  Harness harness;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  // A raw socket spewing garbage gets its connection dropped, while the
  // well-behaved connection keeps working.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(harness.server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char junk[] = "this is definitely not a frame header!!!";
  ASSERT_GT(::send(fd, junk, sizeof(junk), MSG_NOSIGNAL), 0);
  char buf[16];
  // The server answers garbage with a close: recv drains to EOF (0) or a
  // reset, never a valid frame.
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_LE(n, 0);
  ::close(fd);

  Result<CallOutcome> outcome = client.Call(MakeRequest(1, 2));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->nacked);
}

TEST(NetLoopback, StaleServiceShedsWithRetryHint) {
  NetServerOptions options;
  options.admission.max_staleness_edges = 10;
  options.admission.retry_after_ms = 33;
  Harness harness(options);
  // Drive the live frontier far past the published snapshot.
  harness.service->NoteLiveEdges(kEdges + 1000);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server.port()).ok());
  Result<CallOutcome> outcome = client.Call(MakeRequest(3, 2));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->nacked);
  EXPECT_EQ(outcome->nack.reason, NackReason::kStaleSnapshot);
  EXPECT_EQ(outcome->nack.retry_after_ms, 33u);
}

TEST(NetLoopback, ServerStopsCleanlyWithClientsConnected) {
  auto harness = std::make_unique<Harness>();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness->server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());
  harness->server.Stop();
  // The next call sees EOF/reset, not a hang.
  Result<CallOutcome> outcome = client.Call(MakeRequest(2, 2));
  EXPECT_FALSE(outcome.ok());
}

}  // namespace
}  // namespace net
}  // namespace streamlink

#include "sketch/bbit_minhash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/hashing.h"
#include "util/random.h"

namespace streamlink {
namespace {

BBitMinHash SketchOf(const std::vector<uint64_t>& items, uint32_t k,
                     uint32_t bits, const HashFamily& family) {
  BBitMinHash s(k, bits);
  for (uint64_t x : items) s.Update(x, family);
  return s;
}

TEST(BBitMinHash, StartsEmpty) {
  BBitMinHash s(16, 2);
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.num_hashes(), 16u);
  EXPECT_EQ(s.bits(), 2u);
}

TEST(BBitMinHashDeathTest, BadParamsAbort) {
  EXPECT_DEATH(BBitMinHash(0, 2), "at least one hash");
  EXPECT_DEATH(BBitMinHash(16, 0), "bits");
  EXPECT_DEATH(BBitMinHash(16, 9), "bits");
}

TEST(BBitMinHash, PayloadIsPacked) {
  EXPECT_EQ(BBitMinHash(64, 1).PayloadBytes(), 8u);
  EXPECT_EQ(BBitMinHash(64, 2).PayloadBytes(), 16u);
  EXPECT_EQ(BBitMinHash(64, 8).PayloadBytes(), 64u);
  EXPECT_EQ(BBitMinHash(10, 3).PayloadBytes(), 4u);  // 30 bits -> 4 bytes
}

TEST(BBitMinHash, SlotBitsAreLowBitsOfMinima) {
  HashFamily family(1, 8);
  std::vector<uint64_t> items = {5, 9, 13};
  BBitMinHash s = SketchOf(items, 8, 4, family);
  for (uint32_t i = 0; i < 8; ++i) {
    uint64_t min_hash = ~0ULL;
    for (uint64_t x : items) min_hash = std::min(min_hash, family.Hash(i, x));
    EXPECT_EQ(s.SlotBits(i), min_hash & 0xf) << "slot " << i;
  }
}

TEST(BBitMinHash, StraddlingByteBoundariesWorks) {
  // 3-bit slots cross byte boundaries; verify every slot round-trips.
  HashFamily family(2, 21);
  BBitMinHash s = SketchOf({42}, 21, 3, family);
  for (uint32_t i = 0; i < 21; ++i) {
    EXPECT_EQ(s.SlotBits(i), family.Hash(i, 42) & 0x7) << "slot " << i;
  }
}

TEST(BBitMinHash, IdenticalSetsEstimateOne) {
  HashFamily family(3, 64);
  BBitMinHash a = SketchOf({1, 2, 3}, 64, 2, family);
  BBitMinHash b = SketchOf({3, 2, 1}, 64, 2, family);
  EXPECT_DOUBLE_EQ(BBitMinHash::MatchFraction(a, b), 1.0);
  EXPECT_DOUBLE_EQ(BBitMinHash::EstimateJaccard(a, b), 1.0);
}

TEST(BBitMinHash, EmptySketchEstimatesZero) {
  HashFamily family(4, 16);
  BBitMinHash a(16, 2);
  BBitMinHash b = SketchOf({1}, 16, 2, family);
  EXPECT_DOUBLE_EQ(BBitMinHash::EstimateJaccard(a, b), 0.0);
}

TEST(BBitMinHashDeathTest, IncompatibleComparisonAborts) {
  BBitMinHash a(16, 2), b(16, 4), c(32, 2);
  EXPECT_DEATH(BBitMinHash::MatchFraction(a, b), "incompatible");
  EXPECT_DEATH(BBitMinHash::MatchFraction(a, c), "incompatible");
}

TEST(BBitMinHash, DisjointSetsMatchAtCollisionRate) {
  // For J = 0 the raw match fraction should concentrate near 2^-b, and the
  // corrected estimate near 0.
  HashFamily family(5, 4096);
  Rng rng(1);
  std::vector<uint64_t> av, bv;
  for (int i = 0; i < 500; ++i) {
    av.push_back(rng.Next());
    bv.push_back(rng.Next());
  }
  for (uint32_t bits : {1u, 2u, 4u}) {
    BBitMinHash a = SketchOf(av, 4096, bits, family);
    BBitMinHash b = SketchOf(bv, 4096, bits, family);
    double expected_collisions = std::ldexp(1.0, -static_cast<int>(bits));
    EXPECT_NEAR(BBitMinHash::MatchFraction(a, b), expected_collisions,
                4 * std::sqrt(expected_collisions / 4096))
        << "b=" << bits;
    EXPECT_NEAR(BBitMinHash::EstimateJaccard(a, b), 0.0, 0.05) << bits;
  }
}

/// Property sweep: the bias-corrected estimator concentrates on the true
/// Jaccard for every b.
class BBitAccuracy : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BBitAccuracy, CorrectedEstimateIsAccurate) {
  const uint32_t bits = GetParam();
  const uint32_t k = 2048;
  HashFamily family(6 + bits, k);
  Rng rng(bits);
  const int size = 600;
  for (double overlap : {0.25, 0.75}) {
    int shared = static_cast<int>(overlap * size);
    std::vector<uint64_t> av, bv;
    for (int i = 0; i < shared; ++i) {
      uint64_t x = rng.Next();
      av.push_back(x);
      bv.push_back(x);
    }
    for (int i = shared; i < size; ++i) {
      av.push_back(rng.Next());
      bv.push_back(rng.Next());
    }
    BBitMinHash a = SketchOf(av, k, bits, family);
    BBitMinHash b = SketchOf(bv, k, bits, family);
    double truth = static_cast<double>(shared) / (2 * size - shared);
    // Variance inflation ~ 1/(1-2^-b): 5-sigma envelope.
    double c = std::ldexp(1.0, -static_cast<int>(bits));
    double sigma = std::sqrt(1.0 / (k * (1 - c) * (1 - c)));
    EXPECT_NEAR(BBitMinHash::EstimateJaccard(a, b), truth, 5 * sigma)
        << "b=" << bits << " overlap=" << overlap;
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, BBitAccuracy,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(BBitMinHash, UpdateIsIdempotent) {
  HashFamily family(7, 32);
  BBitMinHash a = SketchOf({1, 2, 3}, 32, 4, family);
  BBitMinHash b = SketchOf({1, 1, 2, 3, 2}, 32, 4, family);
  for (uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(a.SlotBits(i), b.SlotBits(i));
  }
}

}  // namespace
}  // namespace streamlink

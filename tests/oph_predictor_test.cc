#include "core/oph_predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_predictor.h"
#include "eval/experiment.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "util/random.h"

namespace streamlink {
namespace {

TEST(OphPredictor, NameAndDefaults) {
  OphPredictor p;
  EXPECT_EQ(p.name(), "oph");
  EXPECT_EQ(p.options().num_bins, 64u);
}

TEST(OphPredictor, IdenticalNeighborhoodsReachJaccardOne) {
  OphPredictor p;
  FeedStream(p, {{0, 10}, {0, 11}, {0, 12}, {1, 10}, {1, 11}, {1, 12}});
  OverlapEstimate e = p.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(e.jaccard, 1.0);
  EXPECT_NEAR(e.intersection, 3.0, 1e-9);
}

TEST(OphPredictor, UnseenVerticesEstimateZero) {
  OphPredictor p;
  FeedStream(p, {{0, 1}});
  OverlapEstimate e = p.EstimateOverlap(5, 6);
  EXPECT_DOUBLE_EQ(e.jaccard, 0.0);
  EXPECT_DOUBLE_EQ(e.adamic_adar, 0.0);
}

TEST(OphPredictor, DegreesExact) {
  OphPredictor p;
  FeedStream(p, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(p.Degree(0), 3u);
  EXPECT_EQ(p.Degree(3), 1u);
}

TEST(OphPredictor, FactoryBuildsIt) {
  PredictorConfig config;
  config.kind = "oph";
  config.sketch_size = 32;
  auto p = MakePredictor(config);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->name(), "oph");
}

TEST(OphPredictor, AccuracyOnWorkloadComparableToMinHash) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 91});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(1);
  auto pairs = SampleOverlappingPairs(csr, 300, rng);

  PredictorConfig oph;
  oph.kind = "oph";
  oph.sketch_size = 128;
  AccuracyReport oph_report = MeasureAccuracy(g, oph, pairs);

  PredictorConfig minhash;
  minhash.kind = "minhash";
  minhash.sketch_size = 128;
  AccuracyReport mh_report = MeasureAccuracy(g, minhash, pairs);

  // OPH should be in the same accuracy class (within 2x of k-perm error,
  // plus an absolute floor for the near-zero regime).
  EXPECT_LT(oph_report.jaccard.MeanAbsoluteError(),
            2.0 * mh_report.jaccard.MeanAbsoluteError() + 0.02);
}

TEST(OphPredictor, ErrorShrinksWithBins) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.05, 92});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(2);
  auto pairs = SampleOverlappingPairs(csr, 300, rng);
  double prev = 1e9;
  for (uint32_t k : {16u, 128u, 512u}) {
    PredictorConfig config;
    config.kind = "oph";
    config.sketch_size = k;
    AccuracyReport report = MeasureAccuracy(g, config, pairs);
    double err = report.jaccard.MeanAbsoluteError();
    EXPECT_LT(err, prev * 1.1) << "k=" << k;
    prev = err;
  }
  EXPECT_LT(prev, 0.06);
}

TEST(OphPredictor, MemoryMatchesMinHashAtEqualK) {
  OphPredictor oph(OphPredictorOptions{64, 1});
  EdgeList edges;
  for (VertexId i = 0; i < 1000; ++i) {
    edges.push_back({i, static_cast<VertexId>((i + 7) % 1000)});
  }
  FeedStream(oph, edges);
  double per_vertex =
      static_cast<double>(oph.MemoryBytes()) / oph.num_vertices();
  EXPECT_LT(per_vertex, 1500.0);  // 64 bins * 16 bytes + overheads
}

TEST(OphPredictor, StreamOrderIndependent) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"er", 0.02, 93});
  OphPredictor forward, backward;
  FeedStream(forward, g.edges);
  EdgeList reversed(g.edges.rbegin(), g.edges.rend());
  FeedStream(backward, reversed);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    EXPECT_DOUBLE_EQ(forward.EstimateOverlap(u, v).jaccard,
                     backward.EstimateOverlap(u, v).jaccard);
  }
}

}  // namespace
}  // namespace streamlink

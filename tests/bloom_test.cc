#include "sketch/bloom.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/random.h"

namespace streamlink {
namespace {

TEST(BloomFilter, BitsRoundedToWords) {
  BloomFilter f(100, 3, 1);
  EXPECT_EQ(f.num_bits() % 64, 0u);
  EXPECT_GE(f.num_bits(), 100u);
}

TEST(BloomFilterDeathTest, BadParamsAbort) {
  EXPECT_DEATH(BloomFilter(10, 3, 1), "64 bits");
  EXPECT_DEATH(BloomFilter(128, 0, 1), "one hash");
  EXPECT_DEATH(BloomFilter::FromExpectedItems(0, 0.01, 1), "positive");
  EXPECT_DEATH(BloomFilter::FromExpectedItems(10, 1.5, 1), "fpp");
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f = BloomFilter::FromExpectedItems(1000, 0.01, 2);
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) f.Add(k);
  for (uint64_t k : keys) EXPECT_TRUE(f.MayContain(k));
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter f(1024, 4, 4);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(f.MayContain(rng.Next()));
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  const double target = 0.02;
  BloomFilter f = BloomFilter::FromExpectedItems(5000, target, 6);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) f.Add(rng.Next());
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (f.MayContain(rng.Next())) ++false_positives;
  }
  double fpp = static_cast<double>(false_positives) / probes;
  EXPECT_LT(fpp, 3.0 * target);
  EXPECT_NEAR(f.EstimatedFpp(), target, 2.0 * target);
}

TEST(BloomFilter, AddReportsNovelty) {
  BloomFilter f(4096, 4, 8);
  EXPECT_TRUE(f.Add(42));
  EXPECT_FALSE(f.Add(42));  // second insert flips nothing
}

TEST(BloomFilter, TracksItemCount) {
  BloomFilter f(1024, 3, 9);
  f.Add(1);
  f.Add(2);
  f.Add(2);
  EXPECT_EQ(f.items_added(), 3u);
}

TEST(BloomFilter, FromExpectedItemsPicksReasonableHashes) {
  BloomFilter f = BloomFilter::FromExpectedItems(1000, 0.01, 10);
  // Optimal k = m/n·ln2 ≈ 9.6/ln2... ≈ 6.6 → 6 or 7.
  EXPECT_GE(f.num_hashes(), 5u);
  EXPECT_LE(f.num_hashes(), 8u);
}

}  // namespace
}  // namespace streamlink

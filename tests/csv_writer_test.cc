#include "util/csv_writer.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace streamlink {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified: each gtest case runs as its own ctest process, and
    // parallel workers share one temp dir.
    path_ = ::testing::TempDir() + "/csv_writer_test_" +
            std::to_string(::getpid()) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_);
    ASSERT_TRUE(w.status().ok());
    w.WriteHeader({"k", "error"});
    w.AppendRow({"16", "0.08"});
    w.AppendRow({"32", "0.05"});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(ReadFile(path_), "k,error\n16,0.08\n32,0.05\n");
}

TEST_F(CsvWriterTest, NumericRowsUseCompactFormat) {
  {
    CsvWriter w(path_);
    w.WriteHeader({"a", "b"});
    w.AppendNumericRow({1.5, 0.000123456});
  }
  EXPECT_EQ(ReadFile(path_), "a,b\n1.5,0.000123456\n");
}

TEST_F(CsvWriterTest, BadPathYieldsIoError) {
  CsvWriter w("/nonexistent-dir-xyz/file.csv");
  EXPECT_FALSE(w.status().ok());
  EXPECT_EQ(w.status().code(), StatusCode::kIoError);
  w.AppendRow({"ignored"});  // must not crash
}

TEST_F(CsvWriterTest, HeaderTwiceAborts) {
  CsvWriter w(path_);
  w.WriteHeader({"a"});
  EXPECT_DEATH(w.WriteHeader({"b"}), "header written twice");
}

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvWriter::EscapeField("hello"), "hello");
  EXPECT_EQ(CsvWriter::EscapeField("3.14"), "3.14");
  EXPECT_EQ(CsvWriter::EscapeField(""), "");
}

TEST(CsvEscape, CommasAreQuoted) {
  EXPECT_EQ(CsvWriter::EscapeField("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(CsvWriter::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlinesAreQuoted) {
  EXPECT_EQ(CsvWriter::EscapeField("a\nb"), "\"a\nb\"");
}

}  // namespace
}  // namespace streamlink

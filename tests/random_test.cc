#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace streamlink {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c;
  }
  Rng d(8);
  EXPECT_NE(Rng(7).Next(), d.Next());
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(1);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedOneIsAlwaysZero) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Rng, NextBoundedIsRoughlyUniform) {
  Rng rng(3);
  const uint64_t bound = 10;
  const int n = 100000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  double expected = static_cast<double>(n) / bound;
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected)) << "bucket " << b;
  }
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInHalfOpenUnit) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoublePositiveNeverZero) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoublePositive(), 0.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ExpHasUnitMean) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExp();
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, GeometricMeanMatches) {
  // E[failures before success] = (1-p)/p.
  Rng rng(11);
  const double p = 0.25;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextGeometric(p));
  EXPECT_NEAR(sum / n, (1 - p) / p, 0.1);
}

TEST(Rng, GeometricWithPOneIsZero) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextGeometric(1.0), 0u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleHandlesTrivialSizes) {
  Rng rng(14);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(15);
  for (uint64_t n : {10ULL, 1000ULL}) {
    for (uint64_t count : std::vector<uint64_t>{0, 1, 5, n / 2, n}) {
      auto sample = rng.SampleWithoutReplacement(n, count);
      EXPECT_EQ(sample.size(), count);
      std::set<uint64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), count);
      for (uint64_t s : sample) EXPECT_LT(s, n);
    }
  }
}

TEST(Rng, SampleWithoutReplacementCoversAllElements) {
  Rng rng(16);
  auto sample = rng.SampleWithoutReplacement(20, 20);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(RngDeathTest, SampleMoreThanPopulationAborts) {
  Rng rng(17);
  EXPECT_DEATH(rng.SampleWithoutReplacement(5, 6), "cannot sample");
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(18);
  Rng b = a.Fork();
  // Forked stream differs from parent's continuation.
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, GoldenValuesPinTheSeedingContract) {
  // The seeding contract (see Rng's header comment): a seed fully
  // determines the output stream, on every platform, forever. These
  // golden values pin SplitMix64 seeding + xoshiro256++ output; if this
  // test fails, every recorded experiment seed in the repo is invalidated
  // — change the constants only with a deliberate format break.
  Rng rng(42);
  EXPECT_EQ(rng.Next(), 0xefdb3abe2d004720ULL);
  EXPECT_EQ(rng.Next(), 0x74285db8cad01896ULL);
  EXPECT_EQ(rng.Next(), 0xe6026692c15933c2ULL);
  EXPECT_EQ(rng.Next(), 0x3aa35cc5ec89ce4cULL);
  EXPECT_EQ(rng.Next(), 0xabc99e3ed95f4ad3ULL);

  // Seed 0 must not degenerate (SplitMix64 expansion, not raw state).
  Rng zero(0);
  EXPECT_EQ(zero.Next(), 0x58f24f57e97e3f07ULL);
}

TEST(Rng, GoldenValuesPinDerivedDistributions) {
  // Derived draws are part of the determinism contract too: rejection
  // sampling (NextBounded) and the float conversion must consume the
  // underlying stream identically everywhere.
  Rng bounded(42);
  EXPECT_EQ(bounded.NextBounded(1000), 936u);
  EXPECT_EQ(bounded.NextBounded(1000), 453u);
  EXPECT_EQ(bounded.NextBounded(1000), 898u);
  EXPECT_EQ(bounded.NextBounded(1000), 229u);

  Rng dbl(7);
  EXPECT_EQ(dbl.NextDouble(), 0.13860190565125818);
  EXPECT_EQ(dbl.NextDouble(), 0.49342819048733821);

  // Fork derivation is deterministic and advances the parent exactly once.
  Rng parent(123);
  Rng forked = parent.Fork();
  EXPECT_EQ(forked.Next(), 0x7570ab220df03a6eULL);
  EXPECT_EQ(parent.Next(), 0x5afa8dd1e5c79d21ULL);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(19);
  uint64_t v = rng();
  (void)v;
}

}  // namespace
}  // namespace streamlink

#include "core/predictor_factory.h"

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace streamlink {
namespace {

TEST(PredictorFactory, BuildsEveryKind) {
  for (const std::string& kind : PredictorKinds()) {
    PredictorConfig config;
    config.kind = kind;
    auto p = MakePredictor(config);
    ASSERT_TRUE(p.ok()) << kind << ": " << p.status().ToString();
    EXPECT_EQ((*p)->name(), kind);
  }
}

TEST(PredictorFactory, UnknownKindIsInvalidArgument) {
  PredictorConfig config;
  config.kind = "magic";
  auto p = MakePredictor(config);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(PredictorFactory, TinySketchSizeRejected) {
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 1;
  EXPECT_FALSE(MakePredictor(config).ok());
}

TEST(PredictorFactory, ExactIgnoresSketchSize) {
  PredictorConfig config;
  config.kind = "exact";
  config.sketch_size = 0;
  EXPECT_TRUE(MakePredictor(config).ok());
}

TEST(PredictorFactory, VertexBiasedSplitsBudget) {
  PredictorConfig config;
  config.kind = "vertex_biased";
  config.sketch_size = 64;
  auto p = MakePredictor(config);
  ASSERT_TRUE(p.ok());
  // Budget split: both halves present, predictor functional.
  FeedStream(**p, {{0, 1}, {1, 2}});
  EXPECT_EQ((*p)->edges_processed(), 2u);
}

TEST(PredictorFactory, BottomKSketchDegreesFlag) {
  PredictorConfig config;
  config.kind = "bottomk";
  config.sketch_degrees = true;
  auto p = MakePredictor(config);
  ASSERT_TRUE(p.ok());
  FeedStream(**p, {{0, 1}});
  EXPECT_DOUBLE_EQ((*p)->EstimateOverlap(0, 1).degree_u, 1.0);
}

TEST(PredictorFactory, ZeroThreadsRejected) {
  PredictorConfig config;
  config.kind = "minhash";
  config.threads = 0;
  auto p = MakePredictor(config);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(PredictorFactory, MultiThreadBuildsShardedForSupportedKinds) {
  for (const std::string& kind : PredictorKinds()) {
    PredictorConfig config;
    config.kind = kind;
    config.threads = 2;
    auto p = MakePredictor(config);
    // threads > 1 must succeed exactly for the shardable kinds, and the
    // result must advertise itself as sharded.
    if (KindSupportsSharding(kind)) {
      ASSERT_TRUE(p.ok()) << kind << ": " << p.status().ToString();
      EXPECT_EQ((*p)->name(), "sharded:" + kind);
    } else {
      ASSERT_FALSE(p.ok()) << kind;
      EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(PredictorFactory, KindSupportsShardingMatchesCapabilityFlag) {
  for (const std::string& kind : PredictorKinds()) {
    PredictorConfig config;
    config.kind = kind;
    auto p = MakePredictor(config);
    ASSERT_TRUE(p.ok()) << kind;
    EXPECT_EQ((*p)->SupportsSharding(), KindSupportsSharding(kind)) << kind;
  }
}

TEST(PredictorFactory, AllSketchKindsAgreeOnTinyExactCase) {
  // On a graph far below every sketch's capacity all predictors are exact.
  EdgeList edges = {{0, 2}, {0, 3}, {1, 2}, {1, 3}};
  for (const std::string& kind : PredictorKinds()) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 64;
    auto p = MakePredictor(config);
    ASSERT_TRUE(p.ok());
    FeedStream(**p, edges);
    OverlapEstimate e = (*p)->EstimateOverlap(0, 1);
    EXPECT_DOUBLE_EQ(e.jaccard, 1.0) << kind;
    EXPECT_NEAR(e.intersection, 2.0, 1e-9) << kind;
  }
}

}  // namespace
}  // namespace streamlink

#include "stream/edge_batch.h"

#include <gtest/gtest.h>

#include <vector>

#include "stream/stream_driver.h"

namespace streamlink {
namespace {

TEST(EdgeBatch, DefaultIsEmpty) {
  EdgeBatch batch;
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_FALSE(batch.has_hash_u());
  EXPECT_FALSE(batch.has_hash_v());
}

TEST(EdgeBatch, WrapsEdgeRun) {
  const EdgeList edges = {{0, 1}, {1, 2}, {2, 3}};
  EdgeBatch batch(edges.data(), edges.size());
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[1], Edge(1, 2));
  size_t seen = 0;
  for (const Edge& e : batch) {
    EXPECT_EQ(e, edges[seen]);
    ++seen;
  }
  EXPECT_EQ(seen, edges.size());
}

TEST(EdgeBatch, SingleWrapsOneEdge) {
  const Edge e{5, 9};
  EdgeBatch batch = EdgeBatch::Single(e);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], e);
}

TEST(EdgeBatch, SliceKeepsLanesAligned) {
  const EdgeList edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const std::vector<uint64_t> hu = {10, 11, 12, 13};
  const std::vector<uint64_t> hv = {20, 21, 22, 23};
  EdgeBatch batch(edges.data(), edges.size(), hu.data(), hv.data());
  ASSERT_TRUE(batch.has_hash_u());
  ASSERT_TRUE(batch.has_hash_v());

  EdgeBatch slice = batch.Slice(1, 2);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0], Edge(1, 2));
  EXPECT_EQ(slice.hash_u(0), 11u);
  EXPECT_EQ(slice.hash_v(1), 22u);

  EdgeBatch prefix = batch.Prefix(100);  // clamps to size
  EXPECT_EQ(prefix.size(), 4u);
  EXPECT_EQ(batch.Prefix(2).size(), 2u);
}

TEST(EdgeBatch, SliceWithoutLanesStaysLaneless) {
  const EdgeList edges = {{0, 1}, {1, 2}};
  EdgeBatch slice = EdgeBatch(edges.data(), edges.size()).Slice(1, 1);
  EXPECT_FALSE(slice.has_hash_u());
  EXPECT_FALSE(slice.has_hash_v());
}

TEST(EdgeBatchBuffer, HalfEdgeAppendFillsNeighborLane) {
  EdgeBatchBuffer buffer;
  buffer.Reserve(2, /*with_hash_u=*/false, /*with_hash_v=*/true);
  buffer.AppendHalfEdge(3, 7, 111);
  buffer.AppendHalfEdge(3, 9, 222);
  EdgeBatch view = buffer.View();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_FALSE(view.has_hash_u());
  ASSERT_TRUE(view.has_hash_v());
  EXPECT_EQ(view[0], Edge(3, 7));
  EXPECT_EQ(view.hash_v(1), 222u);
}

TEST(EdgeBatchBuffer, HashedAppendFillsBothLanes) {
  EdgeBatchBuffer buffer;
  buffer.AppendHashed(Edge(1, 2), 10, 20);
  EdgeBatch view = buffer.View();
  ASSERT_TRUE(view.has_hash_u());
  ASSERT_TRUE(view.has_hash_v());
  EXPECT_EQ(view.hash_u(0), 10u);
  EXPECT_EQ(view.hash_v(0), 20u);
}

TEST(EdgeBatchBuffer, ViewDropsShortLane) {
  EdgeBatchBuffer buffer;
  buffer.AppendHashed(Edge(1, 2), 10, 20);
  buffer.Append(Edge(2, 3));  // no hashes — lanes now disagree with edges
  EdgeBatch view = buffer.View();
  EXPECT_EQ(view.size(), 2u);
  EXPECT_FALSE(view.has_hash_u());
  EXPECT_FALSE(view.has_hash_v());
}

TEST(EdgeBatchBuffer, ClearResetsAllLanes) {
  EdgeBatchBuffer buffer;
  buffer.AppendHashed(Edge(1, 2), 10, 20);
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_TRUE(buffer.View().empty());
  buffer.Append(Edge(4, 5));
  EXPECT_EQ(buffer.View().size(), 1u);
}

// The EdgeConsumer shim: implementing any ONE of the three entry points
// must make all three deliver.

struct CountsViaBatch : EdgeConsumer {
  std::vector<Edge> seen;
  void OnEdgeBatch(const EdgeBatch& batch) override {
    for (const Edge& e : batch) seen.push_back(e);
  }
  using EdgeConsumer::OnEdgeBatch;
};

struct CountsViaRawBatch : EdgeConsumer {
  std::vector<Edge> seen;
  size_t calls = 0;
  void OnEdgeBatch(const Edge* edges, size_t count) override {
    ++calls;
    seen.insert(seen.end(), edges, edges + count);
  }
  using EdgeConsumer::OnEdgeBatch;
};

struct CountsViaSingleEdge : EdgeConsumer {
  std::vector<Edge> seen;
  void OnEdge(const Edge& edge) override { seen.push_back(edge); }
};

TEST(EdgeConsumerShim, ViewOverrideReceivesEveryPath) {
  const EdgeList edges = {{0, 1}, {1, 2}};
  CountsViaBatch c;
  c.OnEdge(edges[0]);                        // forwards as a size-1 view
  c.OnEdgeBatch(edges.data(), edges.size()); // raw adapts to a view
  c.OnEdgeBatch(EdgeBatch(edges.data(), 1)); // native
  EXPECT_EQ(c.seen, (std::vector<Edge>{{0, 1}, {0, 1}, {1, 2}, {0, 1}}));
}

TEST(EdgeConsumerShim, RawOverrideReceivesEveryPath) {
  const EdgeList edges = {{0, 1}, {1, 2}};
  CountsViaRawBatch c;
  c.OnEdge(edges[0]);                         // view default → raw, count 1
  c.OnEdgeBatch(EdgeBatch(edges.data(), 2));  // view default → raw
  EXPECT_EQ(c.calls, 2u);
  EXPECT_EQ(c.seen, (std::vector<Edge>{{0, 1}, {0, 1}, {1, 2}}));
}

TEST(EdgeConsumerShim, OnEdgeOverrideReceivesEveryPath) {
  const EdgeList edges = {{0, 1}, {1, 2}};
  CountsViaSingleEdge c;
  c.OnEdgeBatch(EdgeBatch(edges.data(), 2));  // view → raw → per-edge
  c.OnEdgeBatch(edges.data(), 1);             // raw → per-edge
  c.OnEdge(edges[1]);
  EXPECT_EQ(c.seen, (std::vector<Edge>{{0, 1}, {1, 2}, {0, 1}, {1, 2}}));
}

}  // namespace
}  // namespace streamlink

#include "core/minhash_predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_predictor.h"
#include "eval/experiment.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "util/random.h"

namespace streamlink {
namespace {

/// Small reference stream: star around 0..1 with shared neighbors.
/// N(0) = {2,3,4}, N(1) = {2,3,5} (see exact_measures_test).
EdgeList ReferenceStream() {
  return {{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 5}, {2, 3}};
}

TEST(MinHashPredictor, NameAndDefaults) {
  MinHashPredictor p;
  EXPECT_EQ(p.name(), "minhash");
  EXPECT_EQ(p.options().num_hashes, 64u);
  EXPECT_EQ(p.edges_processed(), 0u);
  EXPECT_EQ(p.num_vertices(), 0u);
}

TEST(MinHashPredictor, TracksDegreesExactly) {
  MinHashPredictor p;
  FeedStream(p, ReferenceStream());
  EXPECT_EQ(p.Degree(0), 3u);
  EXPECT_EQ(p.Degree(1), 3u);
  EXPECT_EQ(p.Degree(2), 3u);
  EXPECT_EQ(p.Degree(4), 1u);
  EXPECT_EQ(p.Degree(99), 0u);
  EXPECT_EQ(p.edges_processed(), 7u);
}

TEST(MinHashPredictor, SelfLoopsIgnored) {
  MinHashPredictor p;
  p.OnEdge(Edge(3, 3));
  EXPECT_EQ(p.edges_processed(), 0u);
  EXPECT_EQ(p.Degree(3), 0u);
}

TEST(MinHashPredictor, UnseenVerticesEstimateZero) {
  MinHashPredictor p;
  FeedStream(p, ReferenceStream());
  OverlapEstimate e = p.EstimateOverlap(50, 60);
  EXPECT_DOUBLE_EQ(e.jaccard, 0.0);
  EXPECT_DOUBLE_EQ(e.intersection, 0.0);
  EXPECT_DOUBLE_EQ(e.adamic_adar, 0.0);
}

TEST(MinHashPredictor, OneSidedIsolationEstimatesZeroOverlap) {
  MinHashPredictor p;
  FeedStream(p, ReferenceStream());
  OverlapEstimate e = p.EstimateOverlap(0, 77);
  EXPECT_DOUBLE_EQ(e.jaccard, 0.0);
  EXPECT_DOUBLE_EQ(e.degree_u, 3.0);
  EXPECT_DOUBLE_EQ(e.degree_v, 0.0);
  EXPECT_DOUBLE_EQ(e.union_size, 3.0);
}

TEST(MinHashPredictor, IdenticalNeighborhoodsHaveJaccardOne) {
  // 0 and 1 both connect to exactly {10, 11, 12}.
  MinHashPredictor p;
  FeedStream(p, {{0, 10}, {0, 11}, {0, 12}, {1, 10}, {1, 11}, {1, 12}});
  OverlapEstimate e = p.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(e.jaccard, 1.0);
  EXPECT_NEAR(e.intersection, 3.0, 1e-9);
  EXPECT_NEAR(e.union_size, 3.0, 1e-9);
}

TEST(MinHashPredictor, DisjointNeighborhoodsNearZero) {
  MinHashPredictor p(MinHashPredictorOptions{256, 1});
  EdgeList edges;
  for (VertexId i = 0; i < 50; ++i) {
    edges.push_back({0, 100 + i});
    edges.push_back({1, 200 + i});
  }
  FeedStream(p, edges);
  EXPECT_LT(p.EstimateOverlap(0, 1).jaccard, 0.05);
}

TEST(MinHashPredictor, ScoreDelegatesToMeasure) {
  MinHashPredictor p;
  FeedStream(p, ReferenceStream());
  OverlapEstimate e = p.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(p.Score(LinkMeasure::kJaccard, 0, 1), e.jaccard);
  EXPECT_DOUBLE_EQ(p.Score(LinkMeasure::kCommonNeighbors, 0, 1),
                   e.intersection);
  EXPECT_DOUBLE_EQ(p.Score(LinkMeasure::kAdamicAdar, 0, 1), e.adamic_adar);
  EXPECT_DOUBLE_EQ(p.Score(LinkMeasure::kPreferentialAttachment, 0, 1), 9.0);
}

TEST(MinHashPredictor, DeterministicForSeed) {
  MinHashPredictorOptions options{32, 77};
  MinHashPredictor a(options), b(options);
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.02, 9});
  FeedStream(a, g.edges);
  FeedStream(b, g.edges);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    OverlapEstimate ea = a.EstimateOverlap(u, v);
    OverlapEstimate eb = b.EstimateOverlap(u, v);
    EXPECT_DOUBLE_EQ(ea.jaccard, eb.jaccard);
    EXPECT_DOUBLE_EQ(ea.adamic_adar, eb.adamic_adar);
  }
}

TEST(MinHashPredictor, StreamOrderDoesNotChangeJaccard) {
  // MinHash slots are order-independent; Jaccard/CN estimates must match
  // across arrival orders (degrees are order-independent too).
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"er", 0.02, 10});
  MinHashPredictorOptions options{32, 5};
  MinHashPredictor forward(options), backward(options);
  FeedStream(forward, g.edges);
  EdgeList reversed(g.edges.rbegin(), g.edges.rend());
  FeedStream(backward, reversed);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    EXPECT_DOUBLE_EQ(forward.EstimateOverlap(u, v).jaccard,
                     backward.EstimateOverlap(u, v).jaccard);
    EXPECT_DOUBLE_EQ(forward.EstimateOverlap(u, v).intersection,
                     backward.EstimateOverlap(u, v).intersection);
  }
}

TEST(MinHashPredictor, MemoryIsConstantPerVertex) {
  // The headline space claim: bytes per vertex must not grow with degree.
  MinHashPredictorOptions options{64, 3};
  MinHashPredictor sparse(options), dense(options);
  // sparse: 1000 vertices in a path. dense: 1000 vertices, ~20x the edges.
  EdgeList path, dense_edges;
  for (VertexId i = 0; i + 1 < 1000; ++i) path.push_back({i, i + 1});
  for (VertexId i = 0; i < 1000; ++i) {
    for (VertexId j = 1; j <= 20; ++j) {
      dense_edges.push_back({i, static_cast<VertexId>((i + j * 37) % 1000)});
    }
  }
  FeedStream(sparse, path);
  FeedStream(dense, dense_edges);
  double sparse_per_vertex =
      static_cast<double>(sparse.MemoryBytes()) / sparse.num_vertices();
  double dense_per_vertex =
      static_cast<double>(dense.MemoryBytes()) / dense.num_vertices();
  EXPECT_NEAR(dense_per_vertex, sparse_per_vertex, sparse_per_vertex * 0.1);
}

/// Property sweep over sketch sizes: empirical Jaccard error on a real
/// workload respects the Hoeffding envelope, and larger k is more accurate
/// on aggregate.
class MinHashPredictorAccuracy : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MinHashPredictorAccuracy, JaccardWithinEnvelopeOnWorkload) {
  const uint32_t k = GetParam();
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 21});
  MinHashPredictor p(MinHashPredictorOptions{k, 99});
  ExactPredictor exact;
  FeedStream(p, g.edges);
  FeedStream(exact, g.edges);

  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(4);
  auto pairs = SampleOverlappingPairs(csr, 300, rng);
  double eps = std::sqrt(std::log(2.0 / 1e-4) / (2.0 * k));  // 99.99% env.
  int violations = 0;
  for (const QueryPair& qp : pairs) {
    double truth = exact.EstimateOverlap(qp.u, qp.v).jaccard;
    double est = p.EstimateOverlap(qp.u, qp.v).jaccard;
    if (std::abs(est - truth) > eps) ++violations;
  }
  // 300 pairs at 1e-4 failure each: essentially zero expected; allow 2.
  EXPECT_LE(violations, 2) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(SketchSizes, MinHashPredictorAccuracy,
                         ::testing::Values(16u, 64u, 256u));

TEST(MinHashPredictor, ErrorShrinksWithK) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 22});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(5);
  auto pairs = SampleOverlappingPairs(csr, 400, rng);

  double prev_error = 1e9;
  for (uint32_t k : {8u, 64u, 512u}) {
    PredictorConfig config;
    config.kind = "minhash";
    config.sketch_size = k;
    AccuracyReport report = MeasureAccuracy(g, config, pairs);
    double err = report.jaccard.MeanAbsoluteError();
    EXPECT_LT(err, prev_error * 1.05) << "k=" << k;
    prev_error = err;
  }
  EXPECT_LT(prev_error, 0.05);  // k=512 should be quite accurate
}

TEST(MinHashPredictor, CommonNeighborEstimateTracksTruth) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.05, 23});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(6);
  auto pairs = SampleOverlappingPairs(csr, 300, rng);
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 256;
  AccuracyReport report = MeasureAccuracy(g, config, pairs);
  EXPECT_LT(report.common_neighbors.MeanRelativeError(), 0.35);
  // Mean signed error near zero => no gross bias.
  EXPECT_LT(std::abs(report.common_neighbors.MeanSignedError()), 1.0);
}

TEST(MinHashPredictor, AdamicAdarEstimateTracksTruth) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.05, 24});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(7);
  auto pairs = SampleOverlappingPairs(csr, 300, rng);
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 256;
  AccuracyReport report = MeasureAccuracy(g, config, pairs);
  EXPECT_LT(report.adamic_adar.MeanRelativeError(), 0.4);
}

}  // namespace
}  // namespace streamlink

#include "graph/exact_measures.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/workloads.h"
#include "graph/adjacency_graph.h"
#include "graph/csr_graph.h"
#include "util/random.h"

namespace streamlink {
namespace {

/// Reference graph used throughout:
///   0-2, 0-3, 0-4, 1-2, 1-3, 1-5, 2-3
/// N(0) = {2,3,4}, N(1) = {2,3,5}, N(0)∩N(1) = {2,3},
/// d(2) = 3 (0,1,3), d(3) = 3 (0,1,2).
AdjacencyGraph ReferenceGraph() {
  AdjacencyGraph g;
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(0, 4);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(1, 5);
  g.AddEdge(2, 3);
  return g;
}

TEST(ExactMeasures, OverlapOnReferenceGraph) {
  AdjacencyGraph g = ReferenceGraph();
  PairOverlap o = ComputeOverlap(g, 0, 1);
  EXPECT_EQ(o.degree_u, 3u);
  EXPECT_EQ(o.degree_v, 3u);
  EXPECT_EQ(o.intersection, 2u);
  EXPECT_EQ(o.union_size, 4u);
  EXPECT_DOUBLE_EQ(o.Jaccard(), 0.5);
  EXPECT_NEAR(o.adamic_adar, 2.0 / std::log(3.0), 1e-12);
  EXPECT_NEAR(o.resource_allocation, 2.0 / 3.0, 1e-12);
}

TEST(ExactMeasures, IsolatedVertexHasZeroOverlap) {
  AdjacencyGraph g = ReferenceGraph();
  PairOverlap o = ComputeOverlap(g, 0, 99);
  EXPECT_EQ(o.degree_v, 0u);
  EXPECT_EQ(o.intersection, 0u);
  EXPECT_EQ(o.union_size, 3u);
  EXPECT_DOUBLE_EQ(o.Jaccard(), 0.0);
}

TEST(ExactMeasures, BothIsolatedIsAllZero) {
  AdjacencyGraph g = ReferenceGraph();
  PairOverlap o = ComputeOverlap(g, 50, 60);
  EXPECT_EQ(o.union_size, 0u);
  EXPECT_DOUBLE_EQ(o.Jaccard(), 0.0);
}

TEST(ExactMeasures, AdamicAdarWeightConvention) {
  EXPECT_DOUBLE_EQ(AdamicAdarWeight(0), 0.0);
  EXPECT_DOUBLE_EQ(AdamicAdarWeight(1), 0.0);
  EXPECT_NEAR(AdamicAdarWeight(2), 1.0 / std::log(2.0), 1e-12);
  EXPECT_NEAR(AdamicAdarWeight(100), 1.0 / std::log(100.0), 1e-12);
}

TEST(ExactMeasures, AllMeasureValuesOnReference) {
  AdjacencyGraph g = ReferenceGraph();
  // d(0)=3, d(1)=3, |∩|=2, |∪|=4.
  EXPECT_DOUBLE_EQ(ExactScore(g, LinkMeasure::kCommonNeighbors, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(ExactScore(g, LinkMeasure::kJaccard, 0, 1), 0.5);
  EXPECT_NEAR(ExactScore(g, LinkMeasure::kAdamicAdar, 0, 1),
              2.0 / std::log(3.0), 1e-12);
  EXPECT_NEAR(ExactScore(g, LinkMeasure::kResourceAllocation, 0, 1),
              2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      ExactScore(g, LinkMeasure::kPreferentialAttachment, 0, 1), 9.0);
  EXPECT_NEAR(ExactScore(g, LinkMeasure::kSalton, 0, 1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(ExactScore(g, LinkMeasure::kSorensen, 0, 1), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(ExactScore(g, LinkMeasure::kHubPromoted, 0, 1), 2.0 / 3.0,
              1e-12);
  EXPECT_NEAR(ExactScore(g, LinkMeasure::kHubDepressed, 0, 1), 2.0 / 3.0,
              1e-12);
  EXPECT_NEAR(ExactScore(g, LinkMeasure::kLeichtHolmeNewman, 0, 1), 2.0 / 9.0,
              1e-12);
}

TEST(ExactMeasures, MeasureNamesAreStableAndDistinct) {
  auto measures = AllLinkMeasures();
  EXPECT_EQ(measures.size(), 10u);
  std::set<std::string> names;
  for (LinkMeasure m : measures) names.insert(LinkMeasureName(m));
  EXPECT_EQ(names.size(), 10u);
  EXPECT_STREQ(LinkMeasureName(LinkMeasure::kAdamicAdar), "adamic_adar");
  EXPECT_STREQ(LinkMeasureName(LinkMeasure::kJaccard), "jaccard");
}

TEST(ExactMeasures, ZeroDegreeMeasuresAreZeroNotNan) {
  AdjacencyGraph g;
  g.AddEdge(0, 1);
  for (LinkMeasure m : AllLinkMeasures()) {
    double score = ExactScore(g, m, 5, 6);
    EXPECT_EQ(score, 0.0) << LinkMeasureName(m);
    EXPECT_FALSE(std::isnan(score)) << LinkMeasureName(m);
  }
}

/// Property: adjacency-based and CSR-based overlap computation agree on
/// random pairs of every standard workload (small scale).
class OverlapAgreement : public ::testing::TestWithParam<std::string> {};

TEST_P(OverlapAgreement, AdjacencyMatchesCsr) {
  GeneratedGraph wl = MakeWorkload(WorkloadSpec{GetParam(), 0.02, 11});
  AdjacencyGraph adj;
  for (const Edge& e : wl.edges) adj.AddEdge(e);
  CsrGraph csr = CsrGraph::FromEdges(wl.edges, wl.num_vertices);

  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(wl.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(wl.num_vertices));
    PairOverlap a = ComputeOverlap(adj, u, v);
    PairOverlap c = ComputeOverlap(csr, u, v);
    EXPECT_EQ(a.degree_u, c.degree_u);
    EXPECT_EQ(a.degree_v, c.degree_v);
    EXPECT_EQ(a.intersection, c.intersection);
    EXPECT_EQ(a.union_size, c.union_size);
    EXPECT_NEAR(a.adamic_adar, c.adamic_adar, 1e-9);
    EXPECT_NEAR(a.resource_allocation, c.resource_allocation, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, OverlapAgreement,
                         ::testing::Values("ba", "er", "ws", "rmat", "sbm",
                                           "plconfig"));

TEST(ExactMeasures, SymmetryHoldsForAllMeasures) {
  AdjacencyGraph g = ReferenceGraph();
  for (LinkMeasure m : AllLinkMeasures()) {
    EXPECT_DOUBLE_EQ(ExactScore(g, m, 0, 1), ExactScore(g, m, 1, 0))
        << LinkMeasureName(m);
  }
}

}  // namespace
}  // namespace streamlink

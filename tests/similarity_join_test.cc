#include "core/similarity_join.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/exact_predictor.h"
#include "eval/experiment.h"
#include "gen/workloads.h"
#include "util/random.h"

namespace streamlink {
namespace {

TEST(ChooseBandingFn, ImpliedThresholdNearTarget) {
  for (uint32_t k : {32u, 64u, 128u, 256u}) {
    for (double t : {0.3, 0.5, 0.8}) {
      BandingPlan plan = ChooseBanding(k, t);
      EXPECT_GE(plan.rows_per_band, 1u);
      EXPECT_GE(plan.num_bands, 1u);
      EXPECT_LE(plan.rows_per_band * plan.num_bands, k);
      EXPECT_NEAR(plan.implied_threshold, t, 0.25)
          << "k=" << k << " t=" << t;
    }
  }
}

TEST(ChooseBandingFnDeathTest, BadThresholdAborts) {
  EXPECT_DEATH(ChooseBanding(64, 0.0), "threshold");
  EXPECT_DEATH(ChooseBanding(64, 1.5), "threshold");
}

/// Builds a graph with `groups` clusters of `per_group` vertices, each
/// cluster's members wired to the same distinct set of `anchors` anchor
/// vertices: within-cluster Jaccard is 1, across clusters 0.
EdgeList TwinClusters(uint32_t groups, uint32_t per_group, uint32_t anchors) {
  EdgeList edges;
  VertexId next_anchor = groups * per_group;
  for (uint32_t g = 0; g < groups; ++g) {
    for (uint32_t a = 0; a < anchors; ++a) {
      VertexId anchor = next_anchor + g * anchors + a;
      for (uint32_t m = 0; m < per_group; ++m) {
        edges.push_back({g * per_group + m, anchor});
      }
    }
  }
  return edges;
}

TEST(SimilarityJoin, FindsAllIdenticalNeighborhoodPairs) {
  // 4 clusters of 3 twins: 4 * C(3,2) = 12 true pairs with J = 1.
  MinHashPredictor predictor(MinHashPredictorOptions{64, 11});
  FeedStream(predictor, TwinClusters(4, 3, 5));

  auto result = AllPairsSimilarVertices(
      predictor, SimilarityJoinOptions{.threshold = 0.9});
  // All 12 twin pairs found, nothing else at J >= 0.9 among member
  // vertices (anchors of the same cluster also share identical
  // neighborhoods — the cluster members — so they match too: C(5,2)*4).
  std::set<std::pair<VertexId, VertexId>> found;
  for (const ScoredPair& p : result) {
    found.insert({p.pair.u, p.pair.v});
    EXPECT_GE(p.score, 0.9);
  }
  for (uint32_t g = 0; g < 4; ++g) {
    for (uint32_t i = 0; i < 3; ++i) {
      for (uint32_t j = i + 1; j < 3; ++j) {
        EXPECT_EQ(found.count({g * 3 + i, g * 3 + j}), 1u)
            << "missing twin pair in group " << g;
      }
    }
  }
  // No cross-cluster member pairs.
  for (const auto& [u, v] : found) {
    if (u < 12 && v < 12) {
      EXPECT_EQ(u / 3, v / 3) << "cross-cluster false positive";
    }
  }
}

TEST(SimilarityJoin, OutputSortedDescendingAndCanonical) {
  MinHashPredictor predictor(MinHashPredictorOptions{64, 12});
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.02, 161});
  FeedStream(predictor, g.edges);
  auto result = AllPairsSimilarVertices(
      predictor, SimilarityJoinOptions{.threshold = 0.3});
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_LT(result[i].pair.u, result[i].pair.v);
    if (i > 0) {
      EXPECT_LE(result[i].score, result[i - 1].score);
    }
  }
  // No duplicates.
  std::set<std::pair<VertexId, VertexId>> unique;
  for (const ScoredPair& p : result) {
    EXPECT_TRUE(unique.insert({p.pair.u, p.pair.v}).second);
  }
}

TEST(SimilarityJoin, RecallAgainstBruteForceIsHigh) {
  // Compare against brute-force estimated-Jaccard enumeration on a small
  // clustered graph: banding should recover nearly all pairs whose
  // estimate clears the threshold.
  MinHashPredictor predictor(MinHashPredictorOptions{128, 13});
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.015, 162});
  FeedStream(predictor, g.edges);

  const double threshold = 0.5;
  std::set<std::pair<VertexId, VertexId>> brute;
  for (VertexId u = 0; u < predictor.num_vertices(); ++u) {
    const MinHashSketch* su = predictor.Sketch(u);
    if (su == nullptr || su->IsEmpty()) continue;
    for (VertexId v = u + 1; v < predictor.num_vertices(); ++v) {
      const MinHashSketch* sv = predictor.Sketch(v);
      if (sv == nullptr || sv->IsEmpty()) continue;
      if (MinHashSketch::EstimateJaccard(*su, *sv) >= threshold) {
        brute.insert({u, v});
      }
    }
  }
  auto result = AllPairsSimilarVertices(
      predictor, SimilarityJoinOptions{.threshold = threshold});
  std::set<std::pair<VertexId, VertexId>> lsh;
  for (const ScoredPair& p : result) lsh.insert({p.pair.u, p.pair.v});

  // LSH results are a subset of brute force (same verifier)...
  for (const auto& pair : lsh) {
    EXPECT_EQ(brute.count(pair), 1u);
  }
  // ...and recall is high (the S-curve passes most above-threshold pairs).
  if (!brute.empty()) {
    size_t hit = 0;
    for (const auto& pair : brute) hit += lsh.count(pair);
    double recall = static_cast<double>(hit) / brute.size();
    EXPECT_GT(recall, 0.75) << "brute=" << brute.size();
  }
}

TEST(SimilarityJoin, EmptyPredictorYieldsNothing) {
  MinHashPredictor predictor;
  EXPECT_TRUE(AllPairsSimilarVertices(predictor).empty());
}

TEST(SimilarityJoin, ExplicitRowsPerBandHonored) {
  MinHashPredictor predictor(MinHashPredictorOptions{64, 14});
  FeedStream(predictor, TwinClusters(2, 2, 4));
  SimilarityJoinOptions options;
  options.threshold = 0.9;
  options.rows_per_band = 8;
  auto result = AllPairsSimilarVertices(predictor, options);
  EXPECT_FALSE(result.empty());
}

}  // namespace
}  // namespace streamlink

// Tests for the extension-surface plumbing: weighted edge-list I/O,
// bottom-k predictor snapshots & merging, and the drifting-stream
// generator.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/bottomk_predictor.h"
#include "eval/experiment.h"
#include "gen/drifting.h"
#include "gen/workloads.h"
#include "graph/edge_list_io.h"
#include "util/random.h"

namespace streamlink {
namespace {

TEST(WeightedEdgeListIo, ParsesWeights) {
  auto result = ParseWeightedEdgeList("0 1 2.5\n1 2 0.75\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->edges.size(), 2u);
  EXPECT_DOUBLE_EQ(result->edges[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(result->edges[1].weight, 0.75);
  EXPECT_EQ(result->num_vertices, 3u);
}

TEST(WeightedEdgeListIo, MissingWeightDefaultsToOne) {
  auto result = ParseWeightedEdgeList("0 1\n2 3 4.0\n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->edges[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(result->edges[1].weight, 4.0);
}

TEST(WeightedEdgeListIo, CommentsAndBlanksSkipped) {
  auto result = ParseWeightedEdgeList("# hi\n\n0 1 1.5\n% also\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges.size(), 1u);
}

TEST(WeightedEdgeListIo, NonPositiveWeightRejected) {
  EXPECT_FALSE(ParseWeightedEdgeList("0 1 0\n").ok());
  EXPECT_FALSE(ParseWeightedEdgeList("0 1 -2\n").ok());
}

TEST(WeightedEdgeListIo, MalformedWeightRejected) {
  auto result = ParseWeightedEdgeList("0 1 banana\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(WeightedEdgeListIo, MalformedEndpointsRejected) {
  EXPECT_FALSE(ParseWeightedEdgeList("zero 1 1.0\n").ok());
}

TEST(WeightedEdgeListIo, SelfLoopsSkippedByDefault) {
  auto result = ParseWeightedEdgeList("5 5 9.0\n0 1 1.0\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges.size(), 1u);
}

TEST(WeightedEdgeListIo, RemapsIdsDensely) {
  auto result = ParseWeightedEdgeList("1000 2000 3.0\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges[0].u, 0u);
  EXPECT_EQ(result->edges[0].v, 1u);
}

TEST(WeightedEdgeListIo, WriteThenReadRoundTrips) {
  std::string path = ::testing::TempDir() + "/weighted_io_test.txt";
  WeightedEdgeList edges = {{0, 1, 2.5}, {1, 2, 0.125}};
  ASSERT_TRUE(WriteWeightedEdgeList(path, edges).ok());
  auto result = ReadWeightedEdgeList(path);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->edges.size(), 2u);
  EXPECT_DOUBLE_EQ(result->edges[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(result->edges[1].weight, 0.125);
  std::remove(path.c_str());
}

class BottomKSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified: each gtest case runs as its own ctest process, and
    // parallel workers share one temp dir.
    path_ = ::testing::TempDir() + "/bottomk_snapshot_test_" +
            std::to_string(::getpid()) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(BottomKSnapshotTest, SaveLoadPreservesEstimates) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 141});
  BottomKPredictorOptions options;
  options.k = 32;
  options.seed = 5;
  BottomKPredictor original(options);
  FeedStream(original, g.edges);
  ASSERT_TRUE(original.Save(path_).ok());

  auto loaded = BottomKPredictor::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->edges_processed(), original.edges_processed());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    OverlapEstimate a = original.EstimateOverlap(u, v);
    OverlapEstimate b = loaded->EstimateOverlap(u, v);
    EXPECT_DOUBLE_EQ(a.jaccard, b.jaccard);
    EXPECT_DOUBLE_EQ(a.intersection, b.intersection);
    EXPECT_DOUBLE_EQ(a.adamic_adar, b.adamic_adar);
  }
}

TEST_F(BottomKSnapshotTest, GarbageRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "nope";
  }
  EXPECT_FALSE(BottomKPredictor::Load(path_).ok());
}

TEST(BottomKMerge, DisjointPartitionEqualsSinglePass) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"er", 0.03, 142});
  BottomKPredictorOptions options;
  options.k = 16;
  BottomKPredictor single(options), left(options), right(options);
  FeedStream(single, g.edges);
  size_t half = g.edges.size() / 2;
  FeedStream(left, EdgeList(g.edges.begin(), g.edges.begin() + half));
  FeedStream(right, EdgeList(g.edges.begin() + half, g.edges.end()));
  left.MergeFrom(right);

  EXPECT_EQ(left.edges_processed(), single.edges_processed());
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    EXPECT_DOUBLE_EQ(left.EstimateOverlap(u, v).jaccard,
                     single.EstimateOverlap(u, v).jaccard);
    EXPECT_DOUBLE_EQ(left.EstimateOverlap(u, v).intersection,
                     single.EstimateOverlap(u, v).intersection);
  }
}

TEST(BottomKMergeDeathTest, IncompatibleOptionsAbort) {
  BottomKPredictorOptions a_options, b_options;
  a_options.k = 16;
  b_options.k = 32;
  BottomKPredictor a(a_options), b(b_options);
  EXPECT_DEATH(a.MergeFrom(b), "different options");
}

TEST(DriftingStreamGen, PhasesPartitionTheStream) {
  Rng rng(3);
  DriftingStreamParams params;
  params.num_vertices = 300;
  params.num_phases = 3;
  DriftingStream drift = GenerateDriftingStream(params, rng);
  ASSERT_EQ(drift.phase_boundaries.size(), 3u);
  EXPECT_EQ(drift.phase_boundaries[0], 0u);
  EXPECT_LT(drift.phase_boundaries[1], drift.phase_boundaries[2]);
  EXPECT_LT(drift.phase_boundaries[2], drift.graph.edges.size());
  EXPECT_EQ(drift.block_of_phase.size(), 3u);
  for (const auto& blocks : drift.block_of_phase) {
    EXPECT_EQ(blocks.size(), params.num_vertices);
  }
}

TEST(DriftingStreamGen, BlockAssignmentsRotate) {
  Rng rng(4);
  DriftingStreamParams params;
  params.num_vertices = 300;
  params.num_phases = 3;
  DriftingStream drift = GenerateDriftingStream(params, rng);
  // Assignments must differ between phases (rotation moved them).
  int differing = 0;
  for (VertexId v = 0; v < params.num_vertices; ++v) {
    if (drift.block_of_phase[0][v] != drift.block_of_phase[1][v]) ++differing;
  }
  EXPECT_GT(differing, static_cast<int>(params.num_vertices / 2));
}

TEST(DriftingStreamGen, IntraPhaseEdgesRespectPhaseBlocks) {
  Rng rng(5);
  DriftingStreamParams params;
  params.num_vertices = 400;
  params.num_phases = 2;
  params.p_inter = 0.0;  // only intra-community edges
  DriftingStream drift = GenerateDriftingStream(params, rng);
  for (uint32_t p = 0; p < 2; ++p) {
    size_t begin = drift.phase_boundaries[p];
    size_t end =
        p + 1 < 2 ? drift.phase_boundaries[p + 1] : drift.graph.edges.size();
    for (size_t i = begin; i < end; ++i) {
      const Edge& e = drift.graph.edges[i];
      EXPECT_EQ(drift.block_of_phase[p][e.u], drift.block_of_phase[p][e.v])
          << "phase " << p << " edge " << ToString(e);
    }
  }
}

}  // namespace
}  // namespace streamlink

#include "core/link_predictor.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/predictor_factory.h"
#include "graph/types.h"

namespace streamlink {
namespace {

// Every edge of this stream flows through both delivery paths below; the
// self-loops are interleaved so skipping one must not desynchronize the
// edge accounting from the state updates.
EdgeList StreamWithSelfLoops() {
  return {{0, 1}, {2, 2}, {1, 2}, {0, 0}, {2, 3}, {3, 3},
          {3, 4}, {1, 3}, {4, 4}, {0, 4}};
}

TEST(LinkPredictor, OnEdgeBatchSkipsSelfLoopsInParityWithOnEdge) {
  const EdgeList edges = StreamWithSelfLoops();
  constexpr uint64_t kSimpleEdges = 6;  // 10 stream edges, 4 self-loops

  for (const std::string& kind : PredictorKinds()) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 8;
    config.seed = 3;

    auto one_by_one = MakePredictor(config);
    ASSERT_TRUE(one_by_one.ok()) << kind;
    for (const Edge& edge : edges) (*one_by_one)->OnEdge(edge);

    auto batched = MakePredictor(config);
    ASSERT_TRUE(batched.ok()) << kind;
    (*batched)->OnEdgeBatch(edges.data(), edges.size());

    // Self-loops must neither update state NOR count as processed edges —
    // in exact parity between the two delivery paths.
    EXPECT_EQ((*one_by_one)->edges_processed(), kSimpleEdges) << kind;
    EXPECT_EQ((*batched)->edges_processed(), kSimpleEdges) << kind;
    EXPECT_EQ((*one_by_one)->num_vertices(), (*batched)->num_vertices())
        << kind;
    for (VertexId u = 0; u < 5; ++u) {
      for (VertexId v = u + 1; v <= 5; ++v) {
        OverlapEstimate a = (*one_by_one)->EstimateOverlap(u, v);
        OverlapEstimate b = (*batched)->EstimateOverlap(u, v);
        EXPECT_EQ(a.jaccard, b.jaccard) << kind << " (" << u << "," << v << ")";
        EXPECT_EQ(a.intersection, b.intersection)
            << kind << " (" << u << "," << v << ")";
        EXPECT_EQ(a.degree_u, b.degree_u)
            << kind << " (" << u << "," << v << ")";
      }
    }
  }
}

TEST(LinkPredictor, SelfLoopOnlyBatchLeavesPredictorUntouched) {
  const EdgeList loops = {{5, 5}, {0, 0}, {5, 5}};
  for (const std::string& kind : PredictorKinds()) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 8;
    auto predictor = MakePredictor(config);
    ASSERT_TRUE(predictor.ok()) << kind;
    (*predictor)->OnEdgeBatch(loops.data(), loops.size());
    EXPECT_EQ((*predictor)->edges_processed(), 0u) << kind;
  }
}

TEST(LinkPredictor, ScoresMatchesPerMeasureScore) {
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 16;
  auto predictor = MakePredictor(config);
  ASSERT_TRUE(predictor.ok());
  const EdgeList edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}};
  (*predictor)->OnEdgeBatch(edges.data(), edges.size());

  const std::vector<LinkMeasure> measures = AllLinkMeasures();
  std::vector<double> scores =
      (*predictor)->Scores({measures.data(), measures.size()}, 0, 3);
  ASSERT_EQ(scores.size(), measures.size());
  for (size_t i = 0; i < measures.size(); ++i) {
    EXPECT_EQ(scores[i], (*predictor)->Score(measures[i], 0, 3))
        << LinkMeasureName(measures[i]);
  }
}

}  // namespace
}  // namespace streamlink

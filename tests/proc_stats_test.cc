// Process-level gauges (obs/proc_stats): the /proc/self/status parser on
// known text, and the live accessors against this very process — every
// running test binary has at least one thread, a few open descriptors,
// and a nonzero resident set.

#include "obs/proc_stats.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/metrics.h"

namespace streamlink {
namespace obs {
namespace {

constexpr const char* kStatusText =
    "Name:\tstreamlink\n"
    "Umask:\t0022\n"
    "VmPeak:\t  204800 kB\n"
    "VmRSS:\t   51200 kB\n"
    "VmHWM:\t  102400 kB\n"
    "Threads:\t7\n";

TEST(ProcStatsParse, ExtractsKeyedValues) {
  EXPECT_EQ(StatusValueFromText(kStatusText, "VmHWM"), 102400u);
  EXPECT_EQ(StatusValueFromText(kStatusText, "VmRSS"), 51200u);
  EXPECT_EQ(StatusValueFromText(kStatusText, "Threads"), 7u);
}

TEST(ProcStatsParse, AbsentKeyIsZero) {
  EXPECT_EQ(StatusValueFromText(kStatusText, "VmSwap"), 0u);
  EXPECT_EQ(StatusValueFromText("", "VmHWM"), 0u);
}

TEST(ProcStatsParse, KeyMustStartItsLine) {
  // "RSS" is a suffix of "VmRSS", never a line of its own here.
  EXPECT_EQ(StatusValueFromText(kStatusText, "RSS"), 0u);
  // A prefix match must still see the ':' — "Vm" alone matches nothing.
  EXPECT_EQ(StatusValueFromText(kStatusText, "Vm"), 0u);
}

TEST(ProcStatsParse, FirstMatchingLineWins) {
  EXPECT_EQ(StatusValueFromText("A:\t1\nA:\t2\n", "A"), 1u);
}

TEST(ProcStatsLive, ThisProcessLooksAlive) {
  // Running under gtest: at least this thread, some descriptors
  // (stdin/stdout/stderr at minimum), and real memory.
  EXPECT_GE(ThreadCount(), 1u);
  EXPECT_GE(OpenFdCount(), 3u);
  EXPECT_GT(CurrentRssKb(), 0u);
  EXPECT_GE(PeakRssKb(), CurrentRssKb());
}

TEST(ProcStatsLive, ThreadCountSeesSpawnedThreads) {
  const uint64_t before = ThreadCount();
  std::atomic<bool> stop{false};
  std::thread extra([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  EXPECT_GE(ThreadCount(), before + 1);
  stop.store(true, std::memory_order_release);
  extra.join();
}

TEST(ProcStatsBind, RegistersTheProcessGauges) {
  MetricsRegistry registry;
  BindProcessMetrics(registry);
  const MetricsSnapshot snapshot = registry.Snapshot();
  bool saw_rss = false, saw_peak = false, saw_fds = false, saw_threads = false;
  for (const GaugeSample& g : snapshot.gauges) {
    if (g.name == "proc.rss_kb") saw_rss = g.value > 0.0;
    if (g.name == "proc.peak_rss_kb") saw_peak = g.value > 0.0;
    if (g.name == "proc.open_fds") saw_fds = g.value >= 3.0;
    if (g.name == "proc.threads") saw_threads = g.value >= 1.0;
  }
  EXPECT_TRUE(saw_rss);
  EXPECT_TRUE(saw_peak);
  EXPECT_TRUE(saw_fds);
  EXPECT_TRUE(saw_threads);
}

}  // namespace
}  // namespace obs
}  // namespace streamlink

#include "serve/query_codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace streamlink {
namespace {

QueryRequest SampleRequest() {
  QueryRequest request;
  request.top_k = 5;
  request.trace = true;
  request.measures = {LinkMeasure::kJaccard, LinkMeasure::kAdamicAdar};
  for (uint32_t i = 0; i < 17; ++i) {
    request.pairs.push_back(QueryPair{i, i * 7 + 1});
  }
  return request;
}

QueryResult SampleResult() {
  QueryResult result;
  result.meta.snapshot_version = 9;
  result.meta.snapshot_edges = 1200;
  result.meta.live_edges = 1450;
  result.meta.staleness_edges = 250;
  result.meta.latency_us = 37.5;
  result.stages = {{0, 1200}, {2, 88000}, {3, 5400}};
  for (uint32_t i = 0; i < 6; ++i) {
    PairResult pr;
    pr.pair = QueryPair{i, i + 100};
    pr.estimate.degree_u = i + 1.0;
    pr.estimate.degree_v = i + 2.0;
    pr.estimate.intersection = i * 0.5;
    pr.estimate.union_size = i * 1.5 + 1.0;
    pr.estimate.jaccard = i * 0.1;
    pr.estimate.adamic_adar = i * 0.2;
    pr.estimate.resource_allocation = i * 0.05;
    pr.scores = {i * 0.1, i * 0.2};
    result.pairs.push_back(pr);
  }
  return result;
}

TEST(QueryCodec, RequestRoundTrips) {
  const QueryRequest request = SampleRequest();
  const std::string bytes = EncodeQueryRequest(request);
  Result<QueryRequest> decoded = DecodeQueryRequest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->top_k, request.top_k);
  EXPECT_TRUE(decoded->trace);
  ASSERT_EQ(decoded->measures.size(), request.measures.size());
  for (size_t i = 0; i < request.measures.size(); ++i) {
    EXPECT_EQ(decoded->measures[i], request.measures[i]);
  }
  ASSERT_EQ(decoded->pairs.size(), request.pairs.size());
  for (size_t i = 0; i < request.pairs.size(); ++i) {
    EXPECT_EQ(decoded->pairs[i].u, request.pairs[i].u);
    EXPECT_EQ(decoded->pairs[i].v, request.pairs[i].v);
  }
}

TEST(QueryCodec, EmptyRequestRoundTrips) {
  QueryRequest request;
  Result<QueryRequest> decoded = DecodeQueryRequest(EncodeQueryRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->top_k, 0u);
  EXPECT_FALSE(decoded->trace);  // trace is opt-in; the default stays off
  EXPECT_TRUE(decoded->measures.empty());
  EXPECT_TRUE(decoded->pairs.empty());
}

TEST(QueryCodec, ResultRoundTrips) {
  const QueryResult result = SampleResult();
  Result<QueryResult> decoded = DecodeQueryResult(EncodeQueryResult(result));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->meta.snapshot_version, result.meta.snapshot_version);
  EXPECT_EQ(decoded->meta.snapshot_edges, result.meta.snapshot_edges);
  EXPECT_EQ(decoded->meta.live_edges, result.meta.live_edges);
  EXPECT_EQ(decoded->meta.staleness_edges, result.meta.staleness_edges);
  EXPECT_EQ(decoded->meta.latency_us, result.meta.latency_us);
  ASSERT_EQ(decoded->stages.size(), result.stages.size());
  for (size_t i = 0; i < result.stages.size(); ++i) {
    EXPECT_EQ(decoded->stages[i].stage, result.stages[i].stage);
    EXPECT_EQ(decoded->stages[i].ns, result.stages[i].ns);
  }
  ASSERT_EQ(decoded->pairs.size(), result.pairs.size());
  for (size_t i = 0; i < result.pairs.size(); ++i) {
    const PairResult& a = decoded->pairs[i];
    const PairResult& b = result.pairs[i];
    EXPECT_EQ(a.pair.u, b.pair.u);
    EXPECT_EQ(a.pair.v, b.pair.v);
    EXPECT_EQ(a.estimate.jaccard, b.estimate.jaccard);
    EXPECT_EQ(a.estimate.adamic_adar, b.estimate.adamic_adar);
    EXPECT_EQ(a.estimate.union_size, b.estimate.union_size);
    ASSERT_EQ(a.scores.size(), b.scores.size());
    for (size_t s = 0; s < b.scores.size(); ++s) {
      EXPECT_EQ(a.scores[s], b.scores[s]);
    }
  }
}

TEST(QueryCodec, NackRoundTrips) {
  NackInfo nack;
  nack.reason = NackReason::kQueueFull;
  nack.retry_after_ms = 75;
  nack.message = "queue at capacity";
  Result<NackInfo> decoded = DecodeNack(EncodeNack(nack));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->reason, nack.reason);
  EXPECT_EQ(decoded->retry_after_ms, nack.retry_after_ms);
  EXPECT_EQ(decoded->message, nack.message);
}

TEST(QueryCodec, NackReasonNamesAreStable) {
  EXPECT_STREQ(NackReasonName(NackReason::kQueueFull), "queue_full");
  EXPECT_STREQ(NackReasonName(NackReason::kStaleSnapshot), "stale_snapshot");
  EXPECT_STREQ(NackReasonName(NackReason::kBadRequest), "bad_request");
  EXPECT_STREQ(NackReasonName(NackReason::kShuttingDown), "shutting_down");
}

// --- Corruption: the acceptance criterion is that EVERY single-byte ----
// --- flip and every truncation is rejected, not just a sampled few. ----

TEST(QueryCodec, RequestRejectsEverySingleByteFlip) {
  const std::string bytes = EncodeQueryRequest(SampleRequest());
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (uint8_t flip : {0x01, 0x80, 0xff}) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      EXPECT_FALSE(DecodeQueryRequest(corrupt).ok())
          << "flip 0x" << std::hex << static_cast<int>(flip)
          << " at byte " << std::dec << i << " was not detected";
    }
  }
}

TEST(QueryCodec, ResultRejectsEverySingleByteFlip) {
  const std::string bytes = EncodeQueryResult(SampleResult());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_FALSE(DecodeQueryResult(corrupt).ok())
        << "flip at byte " << i << " was not detected";
  }
}

TEST(QueryCodec, NackRejectsEverySingleByteFlip) {
  NackInfo nack;
  nack.reason = NackReason::kStaleSnapshot;
  nack.retry_after_ms = 10;
  nack.message = "snapshot too old";
  const std::string bytes = EncodeNack(nack);
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_FALSE(DecodeNack(corrupt).ok())
        << "flip at byte " << i << " was not detected";
  }
}

TEST(QueryCodec, RejectsEveryTruncation) {
  const std::string bytes = EncodeQueryRequest(SampleRequest());
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeQueryRequest(bytes.substr(0, len)).ok())
        << "truncation to " << len << " bytes was not detected";
  }
}

TEST(QueryCodec, RejectsWrongMessageKind) {
  // A valid result envelope is not a request, even though its checksum
  // verifies.
  const std::string bytes = EncodeQueryResult(SampleResult());
  EXPECT_FALSE(DecodeQueryRequest(bytes).ok());
  EXPECT_FALSE(DecodeNack(bytes).ok());
}

TEST(QueryCodec, UntracedResultCarriesNoStages) {
  QueryResult result = SampleResult();
  result.stages.clear();
  Result<QueryResult> decoded = DecodeQueryResult(EncodeQueryResult(result));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->stages.empty());
}

TEST(QueryCodec, RejectsGarbage) {
  EXPECT_FALSE(DecodeQueryRequest("").ok());
  EXPECT_FALSE(DecodeQueryRequest("not a message").ok());
  std::string zeros(64, '\0');
  EXPECT_FALSE(DecodeQueryRequest(zeros).ok());
}

}  // namespace
}  // namespace streamlink

// Metamorphic invariants: the relations between *different executions*
// of the same predictor — shard-count invariance, batch-size invariance,
// clone isolation, merge associativity, snapshot round-trips, and
// kill-at-every-checkpoint resume — run as a full (invariant × kind)
// cross product via the reusable library in src/verify/invariants.h.

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/workloads.h"
#include "verify/invariants.h"

namespace streamlink {
namespace {

InvariantContext MakeContext(const PredictorConfig& config) {
  InvariantContext context;
  context.config = config;
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 131});
  context.edges = std::move(g.edges);
  context.num_vertices = g.num_vertices;
  context.seed = 29;
  context.sample_pairs = 48;
  context.temp_dir = ::testing::TempDir();
  return context;
}

std::string LabelFor(const PredictorConfig& config) {
  std::string label = config.kind;
  if (config.sketch_degrees) label += "_kmv";
  std::replace(label.begin(), label.end(), '-', '_');
  return label;
}

class MetamorphicKindTest : public ::testing::TestWithParam<PredictorConfig> {
};

TEST_P(MetamorphicKindTest, AllInvariantsHold) {
  InvariantContext context = MakeContext(GetParam());
  Status overall = RunAllInvariants(
      context, [](const std::string& name, const Status& status) {
        EXPECT_TRUE(status.ok()) << name << ": " << status.ToString();
      });
  EXPECT_TRUE(overall.ok()) << overall.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MetamorphicKindTest,
    ::testing::ValuesIn(VerificationKindConfigs()),
    [](const ::testing::TestParamInfo<PredictorConfig>& info) {
      return LabelFor(info.param);
    });

TEST(MetamorphicRegistry, CoversEveryFactoryKind) {
  // A kind added to predictor_factory without a verification config would
  // silently escape the whole suite — fail loudly instead.
  std::vector<PredictorConfig> configs = VerificationKindConfigs();
  for (const std::string& kind : PredictorKinds()) {
    bool covered = std::any_of(
        configs.begin(), configs.end(),
        [&kind](const PredictorConfig& c) { return c.kind == kind; });
    EXPECT_TRUE(covered) << "kind '" << kind
                         << "' missing from VerificationKindConfigs()";
  }
}

TEST(MetamorphicRegistry, InvariantNamesAreStableAndUnique) {
  std::vector<Invariant> invariants = AllInvariants();
  ASSERT_GE(invariants.size(), 6u);
  for (size_t i = 0; i < invariants.size(); ++i) {
    EXPECT_FALSE(invariants[i].name.empty());
    for (size_t j = i + 1; j < invariants.size(); ++j) {
      EXPECT_NE(invariants[i].name, invariants[j].name);
    }
  }
}

TEST(MetamorphicRegistry, FailuresPropagate) {
  // A context too small for the merge partitioning must surface as a
  // non-ok aggregate, proving RunAllInvariants cannot swallow failures.
  InvariantContext context;
  context.config.kind = "minhash";
  context.config.sketch_size = 8;
  context.edges = {{0, 1}, {1, 2}};
  context.num_vertices = 3;
  context.temp_dir = ::testing::TempDir();
  Status overall = RunAllInvariants(context);
  EXPECT_FALSE(overall.ok());
  EXPECT_NE(overall.message().find("merge-associativity"), std::string::npos);
}

TEST(Metamorphic, InvariantsComposeOnAlternateStreamShapes) {
  // The invariants are workload-agnostic; spot-check a clustered and a
  // community-structured stream on the cheapest kind to keep CI fast.
  for (const char* workload : {"ws", "sbm"}) {
    PredictorConfig config;
    config.kind = "minhash";
    config.sketch_size = 8;
    config.seed = 11;
    InvariantContext context;
    context.config = config;
    GeneratedGraph g = MakeWorkload(WorkloadSpec{workload, 0.02, 17});
    context.edges = std::move(g.edges);
    context.num_vertices = g.num_vertices;
    context.temp_dir = ::testing::TempDir();
    context.sample_pairs = 32;
    Status overall = RunAllInvariants(context);
    EXPECT_TRUE(overall.ok()) << workload << ": " << overall.ToString();
  }
}

}  // namespace
}  // namespace streamlink

#include "verify/differential.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace streamlink {
namespace {

TurnstileOracleOptions CiOptions() {
  TurnstileOracleOptions options;
  options.workload = "ba";
  options.scale = 0.05;
  options.seed = 1;
  options.delete_fraction = 0.35;
  options.sketch_size = 128;
  options.query_pairs = 256;
  return options;
}

// The ISSUE acceptance gate: every deletable kind passes the turnstile
// oracle on a delete-heavy seeded workload.
TEST(TurnstileOracle, AllDeletableKindsPassSequential) {
  auto report = RunTurnstileOracle(CiOptions());
  ASSERT_TRUE(report.ok()) << report.status().message();
  SL_LOG(kInfo) << FormatReport(*report);
  EXPECT_GE(report->kinds.size(), 2u);  // at least exact + tcm
  for (const auto& kind : report->kinds) {
    EXPECT_TRUE(kind.passed) << kind.kind << ": " << kind.detail;
    EXPECT_EQ(kind.malformed_estimates, 0u) << kind.kind;
    EXPECT_EQ(kind.queries, 256u) << kind.kind;
  }
  EXPECT_TRUE(report->all_passed);
  EXPECT_GT(report->stream_edges, 0u);
}

// Exact-vs-exact is a self-test of the delete plumbing: pointwise zero
// error, no statistical allowance needed.
TEST(TurnstileOracle, ExactSelfTestIsPointwise) {
  TurnstileOracleOptions options = CiOptions();
  options.kinds = {"exact"};
  auto report = RunTurnstileOracle(options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_EQ(report->kinds.size(), 1u);
  EXPECT_TRUE(report->kinds[0].passed) << report->kinds[0].detail;
  EXPECT_EQ(report->kinds[0].max_jaccard_error, 0.0);
  EXPECT_EQ(report->kinds[0].jaccard_violations, 0u);
}

// Ordered parallel builds are bit-identical to sequential ones, so the
// same tolerances must hold at threads=2 (the container has 2 cores).
TEST(TurnstileOracle, TcmPassesWithOrderedThreads) {
  TurnstileOracleOptions options = CiOptions();
  options.kinds = {"tcm"};
  options.threads = 2;
  auto report = RunTurnstileOracle(options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_EQ(report->kinds.size(), 1u);
  EXPECT_TRUE(report->kinds[0].passed) << report->kinds[0].detail;
}

// Relaxed replica folds are lossless for tcm, so the sequential tolerance
// carries over to the relaxed contract run too.
TEST(TurnstileOracle, TcmPassesRelaxed) {
  TurnstileOracleOptions options = CiOptions();
  options.kinds = {"tcm"};
  options.threads = 2;
  options.ordering = IngestOrdering::kRelaxed;
  auto report = RunTurnstileOracle(options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_EQ(report->kinds.size(), 1u);
  EXPECT_TRUE(report->kinds[0].passed) << report->kinds[0].detail;
}

TEST(TurnstileOracle, RejectsNonDeletableKind) {
  TurnstileOracleOptions options = CiOptions();
  options.kinds = {"minhash"};
  auto report = RunTurnstileOracle(options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(TurnstileOracle, DeterministicAcrossRuns) {
  TurnstileOracleOptions options = CiOptions();
  options.kinds = {"tcm"};
  auto a = RunTurnstileOracle(options);
  auto b = RunTurnstileOracle(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kinds[0].max_jaccard_error, b->kinds[0].max_jaccard_error);
  EXPECT_EQ(a->kinds[0].mean_jaccard_error, b->kinds[0].mean_jaccard_error);
  EXPECT_EQ(a->kinds[0].jaccard_violations, b->kinds[0].jaccard_violations);
}

}  // namespace
}  // namespace streamlink

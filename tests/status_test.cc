#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace streamlink {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsSetCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, FactoryFunctionsAreNotOk) {
  EXPECT_FALSE(Status::InvalidArgument("x").ok());
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(Status, ToStringIncludesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(Status, ToStringWithoutMessage) {
  Status s(StatusCode::kNotFound, "");
  EXPECT_EQ(s.ToString(), "NotFound");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(Result, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::Ok();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Result, MutableAccess) {
  Result<std::string> r = std::string("abc");
  r.value() += "def";
  EXPECT_EQ(*r, "abcdef");
  EXPECT_EQ(r->size(), 6u);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
}

}  // namespace
}  // namespace streamlink

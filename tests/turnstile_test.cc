#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/exact_predictor.h"
#include "core/predictor_factory.h"
#include "core/tcm_predictor.h"
#include "core/tombstone_predictor.h"
#include "graph/types.h"

namespace streamlink {
namespace {

// --- TCM: native turnstile kind ---

TcmPredictorOptions SmallTcm() {
  TcmPredictorOptions options;
  options.width = 32;
  options.depth = 3;
  options.seed = 99;
  return options;
}

void ExpectSameEstimate(const OverlapEstimate& a, const OverlapEstimate& b) {
  EXPECT_EQ(a.degree_u, b.degree_u);
  EXPECT_EQ(a.degree_v, b.degree_v);
  EXPECT_EQ(a.intersection, b.intersection);
  EXPECT_EQ(a.union_size, b.union_size);
  EXPECT_EQ(a.jaccard, b.jaccard);
}

TEST(TcmPredictor, InsertDeleteAnnihilatesBitForBit) {
  TcmPredictor churned(SmallTcm());
  TcmPredictor reference(SmallTcm());
  const EdgeList kept = {{0, 1}, {1, 2}, {2, 3}};
  for (const Edge& e : kept) {
    churned.OnEdge(e);
    reference.OnEdge(e);
  }
  churned.OnEdge(Edge(0, 3));
  churned.OnEdge(Edge(1, 3));
  churned.DeleteEdge(Edge(0, 3));
  churned.DeleteEdge(Edge(1, 3));
  // Every touched vertex's strip is back to the insert-only state.
  for (VertexId u = 0; u < 4; ++u) {
    ASSERT_NE(churned.Sketch(u), nullptr);
    EXPECT_TRUE(*churned.Sketch(u) == *reference.Sketch(u)) << "vertex " << u;
    EXPECT_EQ(churned.Degree(u), reference.Degree(u));
  }
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) {
      ExpectSameEstimate(churned.EstimateOverlap(u, v),
                         reference.EstimateOverlap(u, v));
    }
  }
  EXPECT_EQ(churned.deletes_processed(), 2u);
  EXPECT_EQ(reference.deletes_processed(), 0u);
}

TEST(TcmPredictor, DeleteOfNeverInsertedEdgeDipsAndHeals) {
  // Cells are signed and unclamped at write: an unmatched delete dips
  // below zero, reads clamp, and the matching insert restores zero state.
  TcmPredictor p(SmallTcm());
  p.DeleteEdge(Edge(4, 5));
  EXPECT_EQ(p.Degree(4), 0);  // clamped at read, not -1
  EXPECT_EQ(p.Degree(5), 0);
  OverlapEstimate e = p.EstimateOverlap(4, 5);
  EXPECT_EQ(e.intersection, 0.0);
  EXPECT_GE(e.jaccard, 0.0);
  // The matching insert heals the dip: every cell is back to zero.
  p.OnEdge(Edge(4, 5));
  const std::vector<int32_t> zeros(3 * 32, 0);
  ASSERT_NE(p.Sketch(4), nullptr);
  EXPECT_EQ(p.Sketch(4)->cells(), zeros);
  EXPECT_EQ(p.Sketch(5)->cells(), zeros);
  EXPECT_EQ(p.Degree(4), 0);
  EXPECT_EQ(p.Degree(5), 0);
}

TEST(TcmPredictor, DeleteToZeroThenReinsert) {
  TcmPredictor p(SmallTcm());
  p.OnEdge(Edge(0, 1));
  p.DeleteEdge(Edge(0, 1));
  EXPECT_EQ(p.Degree(0), 0);
  p.OnEdge(Edge(0, 1));
  TcmPredictor once(SmallTcm());
  once.OnEdge(Edge(0, 1));
  EXPECT_TRUE(*p.Sketch(0) == *once.Sketch(0));
  EXPECT_TRUE(*p.Sketch(1) == *once.Sketch(1));
  ExpectSameEstimate(p.EstimateOverlap(0, 1), once.EstimateOverlap(0, 1));
}

TEST(TcmPredictor, SelfLoopDeleteIsFiltered) {
  TcmPredictor p(SmallTcm());
  p.DeleteEdge(Edge(7, 7));
  EXPECT_EQ(p.deletes_processed(), 0u);
  EXPECT_EQ(p.num_vertices(), 0u);
}

// --- Exact: the reference turnstile oracle ---

TEST(ExactPredictor, DeleteRemovesEdge) {
  ExactPredictor p;
  p.OnEdge(Edge(0, 1));
  p.OnEdge(Edge(0, 2));
  p.OnEdge(Edge(1, 2));
  p.DeleteEdge(Edge(0, 2));
  OverlapEstimate e = p.EstimateOverlap(0, 1);
  EXPECT_EQ(e.degree_u, 1.0);
  EXPECT_EQ(e.intersection, 0.0);  // 2 is no longer a common neighbor
  EXPECT_EQ(p.deletes_processed(), 1u);
}

TEST(ExactPredictor, DeleteOfNeverInsertedEdgeIsNoOp) {
  ExactPredictor p;
  p.OnEdge(Edge(0, 1));
  p.DeleteEdge(Edge(5, 6));
  ExactPredictor reference;
  reference.OnEdge(Edge(0, 1));
  ExpectSameEstimate(p.EstimateOverlap(0, 1), reference.EstimateOverlap(0, 1));
  EXPECT_EQ(p.deletes_processed(), 1u);  // accounted, even though a no-op
}

// --- Tombstone window: bounded-lag deletes for monotone kinds ---

std::unique_ptr<LinkPredictor> MakeTombstone(uint64_t window) {
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 16;
  config.seed = 11;
  config.tombstone_window = window;
  auto built = MakePredictor(config);
  EXPECT_TRUE(built.ok()) << built.status().message();
  return std::move(*built);
}

TEST(TombstoneWindow, InWindowDeleteAnnihilates) {
  auto p = MakeTombstone(8);
  auto* tomb = dynamic_cast<TombstoneWindowPredictor*>(p.get());
  ASSERT_NE(tomb, nullptr);
  p->OnEdge(Edge(0, 1));
  p->OnEdge(Edge(2, 3));
  p->DeleteEdge(Edge(0, 1));
  tomb->Flush();
  // The inner predictor never saw (0, 1).
  EXPECT_EQ(tomb->inner().edges_processed(), 1u);
  EXPECT_EQ(tomb->unretractable_deletes(), 0u);
  EXPECT_EQ(tomb->inner().EstimateOverlap(0, 1).degree_u, 0.0);
}

TEST(TombstoneWindow, NeverInsertedDeleteCountsUnretractable) {
  auto p = MakeTombstone(8);
  auto* tomb = dynamic_cast<TombstoneWindowPredictor*>(p.get());
  ASSERT_NE(tomb, nullptr);
  p->DeleteEdge(Edge(4, 5));
  EXPECT_EQ(tomb->unretractable_deletes(), 1u);
  EXPECT_EQ(tomb->pending_inserts(), 0u);
}

TEST(TombstoneWindow, DeleteToZeroThenReinsertSurvives) {
  auto p = MakeTombstone(8);
  auto* tomb = dynamic_cast<TombstoneWindowPredictor*>(p.get());
  ASSERT_NE(tomb, nullptr);
  p->OnEdge(Edge(0, 1));
  p->DeleteEdge(Edge(0, 1));
  p->OnEdge(Edge(0, 1));
  tomb->Flush();
  EXPECT_EQ(tomb->inner().edges_processed(), 1u);
  EXPECT_EQ(tomb->unretractable_deletes(), 0u);
  EXPECT_GT(tomb->inner().EstimateOverlap(0, 1).degree_u, 0.0);
}

TEST(TombstoneWindow, OverflowFlushesOldestPermanently) {
  auto p = MakeTombstone(2);
  auto* tomb = dynamic_cast<TombstoneWindowPredictor*>(p.get());
  ASSERT_NE(tomb, nullptr);
  p->OnEdge(Edge(0, 1));
  p->OnEdge(Edge(2, 3));
  p->OnEdge(Edge(4, 5));  // overflows: (0, 1) flushes into the inner sketch
  EXPECT_EQ(tomb->pending_inserts(), 2u);
  EXPECT_EQ(tomb->inner().edges_processed(), 1u);
  // Too late: the oldest insert is already permanent.
  p->DeleteEdge(Edge(0, 1));
  EXPECT_EQ(tomb->unretractable_deletes(), 1u);
  tomb->Flush();
  EXPECT_EQ(tomb->inner().edges_processed(), 3u);
  // Flush is idempotent.
  tomb->Flush();
  EXPECT_EQ(tomb->inner().edges_processed(), 3u);
}

TEST(TombstoneWindow, CloneCarriesWindowState) {
  auto p = MakeTombstone(4);
  auto* tomb = dynamic_cast<TombstoneWindowPredictor*>(p.get());
  ASSERT_NE(tomb, nullptr);
  p->OnEdge(Edge(0, 1));
  p->DeleteEdge(Edge(8, 9));
  auto clone = p->Clone();
  ASSERT_NE(clone, nullptr);
  auto* tomb_clone = dynamic_cast<TombstoneWindowPredictor*>(clone.get());
  ASSERT_NE(tomb_clone, nullptr);
  EXPECT_EQ(tomb_clone->pending_inserts(), 1u);
  EXPECT_EQ(tomb_clone->unretractable_deletes(), 1u);
  // Isolation: draining the clone leaves the source untouched.
  tomb_clone->Flush();
  EXPECT_EQ(tomb->pending_inserts(), 1u);
  EXPECT_EQ(tomb->inner().edges_processed(), 0u);
}

// --- Factory: capability matrix and validation ---

TEST(Factory, KindSupportsDeletionsMatrix) {
  EXPECT_TRUE(KindSupportsDeletions("tcm"));
  EXPECT_TRUE(KindSupportsDeletions("exact"));
  EXPECT_FALSE(KindSupportsDeletions("minhash"));
  EXPECT_FALSE(KindSupportsDeletions("bottomk"));
  EXPECT_FALSE(KindSupportsDeletions("oph"));
  EXPECT_FALSE(KindSupportsDeletions("windowed_minhash"));
  EXPECT_FALSE(KindSupportsDeletions("vertex_biased"));
}

TEST(Factory, PredictorKindsIncludesTcm) {
  auto kinds = PredictorKinds();
  bool found = false;
  for (const auto& k : kinds) found = found || k == "tcm";
  EXPECT_TRUE(found);
}

TEST(Factory, TombstoneOnDeletableKindIsRejected) {
  PredictorConfig config;
  config.kind = "tcm";
  config.tombstone_window = 16;
  EXPECT_FALSE(MakePredictor(config).ok());
  config.kind = "exact";
  EXPECT_FALSE(MakePredictor(config).ok());
}

TEST(Factory, TombstoneShardedIsRejected) {
  PredictorConfig config;
  config.kind = "minhash";
  config.tombstone_window = 16;
  config.threads = 2;
  EXPECT_FALSE(MakePredictor(config).ok());
}

TEST(Factory, TcmDepthZeroIsRejected) {
  PredictorConfig config;
  config.kind = "tcm";
  config.tcm_depth = 0;
  EXPECT_FALSE(MakePredictor(config).ok());
}

// --- Snapshot round trips ---

TEST(TurnstileSnapshot, TcmRoundTripKeepsEstimatesAndCounters) {
  PredictorConfig config;
  config.kind = "tcm";
  config.sketch_size = 32;
  config.tcm_depth = 3;
  config.seed = 17;
  auto built = MakePredictor(config);
  ASSERT_TRUE(built.ok());
  LinkPredictor& p = **built;
  p.OnEdge(Edge(0, 1));
  p.OnEdge(Edge(1, 2));
  p.OnEdge(Edge(0, 2));
  p.DeleteEdge(Edge(0, 2));
  const std::string path = testing::TempDir() + "/tcm_snapshot.bin";
  ASSERT_TRUE(p.Save(path).ok());
  auto loaded = LoadPredictorSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ((*loaded)->name(), "tcm");
  EXPECT_EQ((*loaded)->edges_processed(), p.edges_processed());
  EXPECT_EQ((*loaded)->deletes_processed(), 1u);
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = u + 1; v < 3; ++v) {
      ExpectSameEstimate((*loaded)->EstimateOverlap(u, v),
                         p.EstimateOverlap(u, v));
    }
  }
}

TEST(TurnstileSnapshot, TombstoneRoundTripKeepsWindowState) {
  auto p = MakeTombstone(4);
  p->OnEdge(Edge(0, 1));
  p->OnEdge(Edge(2, 3));
  p->DeleteEdge(Edge(7, 8));  // unretractable
  const std::string path = testing::TempDir() + "/tombstone_snapshot.bin";
  ASSERT_TRUE(p->Save(path).ok());
  auto loaded = LoadPredictorSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  auto* tomb = dynamic_cast<TombstoneWindowPredictor*>(loaded->get());
  ASSERT_NE(tomb, nullptr);
  EXPECT_EQ(tomb->window(), 4u);
  EXPECT_EQ(tomb->pending_inserts(), 2u);
  EXPECT_EQ(tomb->unretractable_deletes(), 1u);
  // The restored window still annihilates.
  (*loaded)->DeleteEdge(Edge(0, 1));
  tomb->Flush();
  EXPECT_EQ(tomb->inner().edges_processed(), 1u);
}

}  // namespace
}  // namespace streamlink

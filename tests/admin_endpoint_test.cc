// End-to-end admin plane: boots the real CLI binary (`net-serve
// --admin-port=0`) as a child process, parses the bound ports off its
// stdout, fetches all four admin pages over raw sockets, round-trips the
// /metrics.json scrape through ParseJsonDump, and checks /tracez fills
// after traced queries. This is the `admin` ctest lane (check-admin).

#include <gtest/gtest.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cli/commands.h"
#include "net/client.h"
#include "obs/export.h"
#include "serve/query_service.h"

#ifndef STREAMLINK_CLI_BIN
#error "STREAMLINK_CLI_BIN must point at the CLI binary"
#endif

namespace streamlink {
namespace {

/// The child net-serve process: spawned with an ephemeral serve + admin
/// port, killed on teardown. Port discovery reads the child's stdout.
class AdminEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string prefix =
        ::testing::TempDir() + "/admin_ep_" + std::to_string(::getpid());
    edges_path_ = prefix + "_edges.txt";
    snapshot_path_ = prefix + "_snapshot.bin";
    std::ostringstream out;
    ASSERT_TRUE(RunCliCommand({"generate", "--workload=er", "--scale=0.02",
                               "--seed=7", "--out=" + edges_path_},
                              out)
                    .ok());
    ASSERT_TRUE(RunCliCommand({"build", "--input=" + edges_path_,
                               "--kind=minhash", "--k=32",
                               "--snapshot=" + snapshot_path_},
                              out)
                    .ok());
    SpawnServer();
  }

  void TearDown() override {
    if (child_ > 0) {
      ::kill(child_, SIGKILL);
      int status = 0;
      ::waitpid(child_, &status, 0);
    }
    if (out_fd_ >= 0) ::close(out_fd_);
    std::remove(edges_path_.c_str());
    std::remove(snapshot_path_.c_str());
  }

  void SpawnServer() {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    child_ = ::fork();
    ASSERT_GE(child_, 0);
    if (child_ == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      const std::string snapshot_flag = "--snapshot=" + snapshot_path_;
      ::execl(STREAMLINK_CLI_BIN, STREAMLINK_CLI_BIN, "net-serve",
              snapshot_flag.c_str(), "--port=0", "--admin-port=0",
              "--duration=60", static_cast<char*>(nullptr));
      ::perror("execl");
      ::_exit(127);
    }
    ::close(fds[1]);
    out_fd_ = fds[0];
    // The server prints its bound ports before it starts sleeping:
    //   serving ... on 127.0.0.1:<port> ...
    //   admin plane on 127.0.0.1:<port> (...)
    std::string banner;
    const int deadline_ms = 30000;
    int waited_ms = 0;
    while (waited_ms < deadline_ms) {
      pollfd pfd{out_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 250);
      waited_ms += 250;
      if (ready <= 0) continue;
      char buf[4096];
      const ssize_t n = ::read(out_fd_, buf, sizeof(buf));
      ASSERT_GT(n, 0) << "server exited before printing its ports: "
                      << banner;
      banner.append(buf, static_cast<size_t>(n));
      if (ParsePorts(banner)) return;
    }
    FAIL() << "timed out waiting for the server banner; got: " << banner;
  }

  bool ParsePorts(const std::string& banner) {
    serve_port_ = PortAfter(banner, " on 127.0.0.1:");
    admin_port_ = PortAfter(banner, "admin plane on 127.0.0.1:");
    return serve_port_ != 0 && admin_port_ != 0;
  }

  static uint16_t PortAfter(const std::string& text, const std::string& key) {
    const size_t at = text.find(key);
    if (at == std::string::npos) return 0;
    return static_cast<uint16_t>(
        std::atoi(text.c_str() + at + key.size()));
  }

  Result<net::AdminPage> Fetch(const std::string& path) {
    return net::FetchAdminPage("127.0.0.1", admin_port_, path);
  }

  std::string edges_path_, snapshot_path_;
  pid_t child_ = -1;
  int out_fd_ = -1;
  uint16_t serve_port_ = 0;
  uint16_t admin_port_ = 0;
};

TEST_F(AdminEndpointTest, HealthzReportsReady) {
  auto page = Fetch("/healthz");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->status, 200);
  EXPECT_EQ(page->body, "ok\n");
}

TEST_F(AdminEndpointTest, MetricsServesPrometheusText) {
  auto page = Fetch("/metrics");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->status, 200);
  EXPECT_NE(page->body.find("# TYPE"), std::string::npos);
  EXPECT_NE(page->body.find("streamlink_proc_threads"), std::string::npos);
  EXPECT_NE(page->body.find("streamlink_slo_error_budget_burn"),
            std::string::npos);
}

TEST_F(AdminEndpointTest, MetricsJsonRoundTripsThroughParseJsonDump) {
  auto page = Fetch("/metrics.json");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->status, 200);
  auto snapshot = obs::ParseJsonDump(page->body);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  bool saw_threads = false;
  for (const obs::GaugeSample& g : snapshot->gauges) {
    if (g.name == "proc.threads") saw_threads = g.value >= 1.0;
  }
  EXPECT_TRUE(saw_threads);
  // The parsed scrape re-exports as Prometheus text: the full round trip
  // a dashboard pipeline would make.
  const std::string prom = obs::ExportText(*snapshot);
  EXPECT_NE(prom.find(obs::PrometheusName("proc.threads")),
            std::string::npos);
}

TEST_F(AdminEndpointTest, StatuszShowsServerState) {
  auto page = Fetch("/statusz");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->status, 200);
  EXPECT_NE(page->body.find("predictor_kind: minhash"), std::string::npos);
  EXPECT_NE(page->body.find("uptime_seconds: "), std::string::npos);
  EXPECT_NE(page->body.find("queue_depth: "), std::string::npos);
  EXPECT_NE(page->body.find("open_fds: "), std::string::npos);
}

TEST_F(AdminEndpointTest, TracezFillsAfterTracedQueries) {
  net::NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", serve_port_).ok());
  QueryRequest request;
  request.trace = true;
  request.pairs = {{1, 2}, {3, 4}};
  for (int i = 0; i < 5; ++i) {
    auto outcome = client.Call(request);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_FALSE(outcome->nacked);
    // The trace bit echoes a per-stage breakdown in the reply.
    EXPECT_FALSE(outcome->result.stages.empty());
  }
  auto page = Fetch("/tracez");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->status, 200);
  EXPECT_NE(page->body.find("slowest requests"), std::string::npos);
  EXPECT_NE(page->body.find("decode"), std::string::npos);
  // At least one retained timeline row below the header.
  EXPECT_NE(page->body.find("\n1 "), std::string::npos);
}

TEST_F(AdminEndpointTest, UnknownPathIs404) {
  auto page = Fetch("/nope");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->status, 404);
}

TEST_F(AdminEndpointTest, UntracedQueriesEchoNoStages) {
  net::NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", serve_port_).ok());
  QueryRequest request;
  request.pairs = {{1, 2}};
  auto outcome = client.Call(request);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_FALSE(outcome->nacked);
  EXPECT_TRUE(outcome->result.stages.empty());
}

}  // namespace
}  // namespace streamlink

// The SLO tracker and hot-key sampler (obs/slo): within/violated
// bookkeeping, error-budget burn arithmetic, concurrent recording, the
// space-saving-backed key frequency top-K, and both objects' metric
// bindings.

#include "obs/slo.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace streamlink {
namespace obs {
namespace {

double GaugeValue(const MetricsSnapshot& snapshot, const std::string& name) {
  for (const GaugeSample& g : snapshot.gauges) {
    if (g.name == name) return g.value;
  }
  ADD_FAILURE() << "gauge not found: " << name;
  return -1.0;
}

TEST(SloTracker, ClassifiesAgainstTheObjective) {
  SloOptions options;
  options.objective_latency_ns = 1000;
  SloTracker slo(options);
  slo.Record(999);
  slo.Record(1000);  // at the objective counts as within
  slo.Record(1001);
  EXPECT_EQ(slo.within(), 2u);
  EXPECT_EQ(slo.violated(), 1u);
}

TEST(SloTracker, BudgetBurnIsViolationRateOverBudget) {
  SloOptions options;
  options.objective_latency_ns = 1000;
  options.target = 0.99;  // 1% error budget
  SloTracker slo(options);
  EXPECT_EQ(slo.BudgetBurn(), 0.0);  // no traffic, no burn
  for (int i = 0; i < 99; ++i) slo.Record(1);
  slo.Record(5000);
  // 1 violation in 100 requests == exactly the 1% budget: burn of 1.
  EXPECT_NEAR(slo.BudgetBurn(), 1.0, 1e-9);
  for (int i = 0; i < 100; ++i) slo.Record(5000);
  // 101/200 violations against a 1% budget: burning ~50x too fast.
  EXPECT_NEAR(slo.BudgetBurn(), (101.0 / 200.0) / 0.01, 1e-9);
}

TEST(SloTracker, ConcurrentRecordsLoseNothing) {
  SloOptions options;
  options.objective_latency_ns = 10;
  SloTracker slo(options);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&slo] {
      for (uint64_t i = 0; i < kPerThread; ++i) slo.Record(i % 2 == 0 ? 5 : 50);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(slo.within() + slo.violated(), kThreads * kPerThread);
  EXPECT_EQ(slo.within(), kThreads * kPerThread / 2);
}

TEST(SloTracker, BindExportsCountersAndBurn) {
  SloOptions options;
  options.objective_latency_ns = 1000;
  options.target = 0.9;
  SloTracker slo(options);
  MetricsRegistry registry;
  slo.BindMetrics(registry);
  for (int i = 0; i < 9; ++i) slo.Record(1);
  slo.Record(100000);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(GaugeValue(snapshot, "slo.requests_within_total"), 9.0);
  EXPECT_EQ(GaugeValue(snapshot, "slo.requests_violated_total"), 1.0);
  EXPECT_NEAR(GaugeValue(snapshot, "slo.error_budget_burn"), 1.0, 1e-9);
  EXPECT_EQ(GaugeValue(snapshot, "slo.objective_latency_ns"), 1000.0);
}

TEST(KeyFrequencyTopK, FindsTheHeavyKeys) {
  KeyFrequencyTopK sampler(8);
  std::vector<uint64_t> batch;
  for (int round = 0; round < 100; ++round) {
    batch.clear();
    batch.push_back(7);  // heavy every round
    batch.push_back(7);
    batch.push_back(42);  // heavy every round
    batch.push_back(1000 + static_cast<uint64_t>(round));  // long tail
    sampler.OfferBatch(batch.data(), batch.size());
  }
  EXPECT_EQ(sampler.total(), 400u);
  const auto top = sampler.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 7u);
  EXPECT_EQ(top[1].item, 42u);
  // Space-saving overestimates; estimate - error lower-bounds the truth.
  EXPECT_GE(top[0].count, 200u);
  EXPECT_GE(top[1].count, 100u);
}

TEST(KeyFrequencyTopK, BindExportsTotalsAndTopShare) {
  KeyFrequencyTopK sampler(8);
  MetricsRegistry registry;
  sampler.BindMetrics(registry);
  const uint64_t keys[4] = {1, 1, 1, 2};
  sampler.OfferBatch(keys, 4);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(GaugeValue(snapshot, "slo.query_keys_total"), 4.0);
  EXPECT_EQ(GaugeValue(snapshot, "slo.hot_keys_tracked"), 2.0);
  EXPECT_NEAR(GaugeValue(snapshot, "slo.hot_key_top1_share"), 0.75, 1e-9);
}

TEST(KeyFrequencyTopK, ConcurrentOffersKeepTotalExact) {
  KeyFrequencyTopK sampler(16);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sampler, t] {
      uint64_t keys[2];
      for (uint64_t i = 0; i < kPerThread; ++i) {
        keys[0] = static_cast<uint64_t>(t);
        keys[1] = 999;
        sampler.OfferBatch(keys, 2);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sampler.total(), kThreads * kPerThread * 2);
  const auto top = sampler.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 999u);
}

}  // namespace
}  // namespace obs
}  // namespace streamlink

// Corpus-replay fuzzing: drives the libFuzzer targets in
// src/verify/fuzz_targets.h over (a) the checked-in corpus under
// fuzz/corpus/ and (b) thousands of seeded deterministic mutations of
// freshly-built valid inputs — so parser/loader regressions are caught by
// plain ctest, no fuzzing toolchain required. The same targets run under
// real libFuzzer via -DSTREAMLINK_FUZZ=ON (see fuzz/README.md).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/predictor_factory.h"
#include "eval/experiment.h"
#include "gen/workloads.h"
#include "net/frame.h"
#include "serve/query_codec.h"
#include "util/logging.h"
#include "verify/fuzz_targets.h"
#include "verify/invariants.h"

#ifndef STREAMLINK_FUZZ_CORPUS_DIR
#define STREAMLINK_FUZZ_CORPUS_DIR ""
#endif

namespace streamlink {
namespace {

const FuzzTarget& TargetNamed(const std::string& name) {
  static const std::vector<FuzzTarget> targets = AllFuzzTargets();
  for (const FuzzTarget& t : targets) {
    if (t.name == name) return t;
  }
  SL_LOG(kFatal) << "no fuzz target named " << name;
  __builtin_unreachable();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// A valid snapshot of every verification kind plus a sharded container —
/// the seed inputs the mutation engine works from.
std::vector<std::string> ValidSnapshotSeeds() {
  std::vector<PredictorConfig> configs = VerificationKindConfigs();
  PredictorConfig sharded;
  sharded.kind = "minhash";
  sharded.sketch_size = 8;
  sharded.seed = 7;
  sharded.threads = 2;
  configs.push_back(sharded);

  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.01, 151});
  std::vector<std::string> seeds;
  for (const PredictorConfig& config : configs) {
    auto predictor = MakePredictor(config);
    SL_CHECK(predictor.ok()) << predictor.status().ToString();
    FeedStream(**predictor, g.edges);
    // Pid-qualified so parallel ctest workers don't clobber each other.
    std::string path = ::testing::TempDir() + "/fuzz_seed_" +
                       std::to_string(::getpid()) + ".snap";
    SL_CHECK_OK((*predictor)->Save(path));
    seeds.push_back(ReadFileBytes(path));
    std::remove(path.c_str());
  }
  return seeds;
}

std::vector<std::string> EdgeListSeeds() {
  return {
      "0 1\n1 2\n2 3\n",
      "# comment\n% other comment\n10 20\n20 30\n",
      "0 1 2.5\n1 2 0.25\n",
      "4294967295 0\n",
      "a b\n0 1\n",
      "-3 7\n",
      "0 1 -2.0\n",
      "",
  };
}

TEST(FuzzReplay, CheckedInCorpusReplaysClean) {
  const std::string corpus_root = STREAMLINK_FUZZ_CORPUS_DIR;
  ASSERT_FALSE(corpus_root.empty())
      << "STREAMLINK_FUZZ_CORPUS_DIR not configured";
  for (const FuzzTarget& target : AllFuzzTargets()) {
    auto replayed = ReplayCorpusDir(corpus_root + "/" + target.name, target);
    ASSERT_TRUE(replayed.ok())
        << target.name << ": " << replayed.status().ToString();
    // An empty corpus means the harness silently tests nothing.
    EXPECT_GT(*replayed, 0u) << target.name;
  }
}

TEST(FuzzReplay, SnapshotLoaderSurvivesSeededMutations) {
  const FuzzTarget& target = TargetNamed("snapshot_loader");
  uint64_t seed = 0xf022;
  for (const std::string& snapshot : ValidSnapshotSeeds()) {
    // The pristine input must also replay (and re-save) cleanly.
    target.run(reinterpret_cast<const uint8_t*>(snapshot.data()),
               snapshot.size());
    MutateAndReplay(snapshot, /*iterations=*/150, seed++, target);
  }
}

TEST(FuzzReplay, EdgeParserSurvivesSeededMutations) {
  const FuzzTarget& target = TargetNamed("edge_parser");
  uint64_t seed = 0xed6e;
  for (const std::string& text : EdgeListSeeds()) {
    target.run(reinterpret_cast<const uint8_t*>(text.data()), text.size());
    MutateAndReplay(text, /*iterations=*/250, seed++, target);
  }
}

/// Valid wire frames (every type, plus payload/frame mismatches) — the
/// seed inputs the net_frame mutation runs work from.
std::vector<std::string> NetFrameSeeds() {
  std::vector<std::string> seeds;
  net::Frame frame;
  frame.type = net::FrameType::kPing;
  frame.request_id = 1;
  seeds.push_back(net::EncodeFrame(frame));

  QueryRequest request;
  request.top_k = 3;
  request.measures = {LinkMeasure::kJaccard};
  request.pairs = {QueryPair{1, 2}, QueryPair{3, 4}};
  frame.type = net::FrameType::kQuery;
  frame.request_id = 2;
  frame.payload = EncodeQueryRequest(request);
  seeds.push_back(net::EncodeFrame(frame));

  QueryResult result;
  result.meta.snapshot_version = 1;
  PairResult pr;
  pr.pair = QueryPair{1, 2};
  pr.scores = {0.5};
  result.pairs.push_back(pr);
  frame.type = net::FrameType::kResult;
  frame.request_id = 3;
  frame.payload = EncodeQueryResult(result);
  seeds.push_back(net::EncodeFrame(frame));

  NackInfo nack;
  nack.reason = NackReason::kQueueFull;
  nack.retry_after_ms = 50;
  nack.message = "queue_full";
  frame.type = net::FrameType::kNack;
  frame.request_id = 4;
  frame.payload = EncodeNack(nack);
  seeds.push_back(net::EncodeFrame(frame));

  // Two frames back to back (exercises the streaming path), and a query
  // frame whose payload is a different message kind.
  seeds.push_back(seeds[0] + seeds[1]);
  frame.type = net::FrameType::kQuery;
  frame.request_id = 5;
  frame.payload = EncodeNack(nack);
  seeds.push_back(net::EncodeFrame(frame));
  return seeds;
}

TEST(FuzzReplay, NetFrameSurvivesSeededMutations) {
  const FuzzTarget& target = TargetNamed("net_frame");
  uint64_t seed = 0x4e37;
  for (const std::string& wire : NetFrameSeeds()) {
    target.run(reinterpret_cast<const uint8_t*>(wire.data()), wire.size());
    MutateAndReplay(wire, /*iterations=*/250, seed++, target);
  }
}

TEST(FuzzReplay, TargetsRegisterStableCorpusNames) {
  // Corpus directories are keyed by target name; renames orphan corpora.
  std::vector<std::string> names;
  for (const FuzzTarget& t : AllFuzzTargets()) names.push_back(t.name);
  EXPECT_EQ(names, (std::vector<std::string>{"snapshot_loader", "edge_parser",
                                             "net_frame"}));
}

// Regenerates the checked-in seed corpus (run manually, then commit):
//   STREAMLINK_WRITE_CORPUS=1 ./build/tests/fuzz_replay_test
//     --gtest_filter='*WriteSeedCorpus*'
TEST(FuzzReplay, WriteSeedCorpus) {
  if (std::getenv("STREAMLINK_WRITE_CORPUS") == nullptr) {
    GTEST_SKIP() << "set STREAMLINK_WRITE_CORPUS=1 to regenerate the corpus";
  }
  const std::string corpus_root = STREAMLINK_FUZZ_CORPUS_DIR;
  ASSERT_FALSE(corpus_root.empty());
  auto write = [](const std::string& dir, const std::string& name,
                  const std::string& bytes) {
    std::filesystem::create_directories(dir);
    std::ofstream out(dir + "/" + name, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  std::vector<std::string> snapshots = ValidSnapshotSeeds();
  for (size_t i = 0; i < snapshots.size(); ++i) {
    write(corpus_root + "/snapshot_loader", "seed_" + std::to_string(i),
          snapshots[i]);
  }
  std::vector<std::string> texts = EdgeListSeeds();
  for (size_t i = 0; i < texts.size(); ++i) {
    write(corpus_root + "/edge_parser", "seed_" + std::to_string(i),
          texts[i]);
  }
  std::vector<std::string> frames = NetFrameSeeds();
  for (size_t i = 0; i < frames.size(); ++i) {
    write(corpus_root + "/net_frame", "seed_" + std::to_string(i),
          frames[i]);
  }
}

}  // namespace
}  // namespace streamlink

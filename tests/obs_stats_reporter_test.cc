// StatsReporter: format resolution by extension, one-shot snapshots in
// all three formats (JSON replaces, text replaces, CSV appends long-form
// rows), the periodic reporting thread, and Stop idempotence. File
// behavior is the contract the CLI's --metrics-out/--metrics-every flags
// depend on.

#include "obs/stats_reporter.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>

#include "obs/export.h"
#include "obs/metrics.h"

namespace streamlink {
namespace obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class StatsReporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/obs_reporter_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    registry_.GetCounter("test.events_total").Add(5);
    registry_.GetGauge("test.depth").Set(2.5);
    registry_.GetHistogram("test.ns").Record(100);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  MetricsRegistry registry_;
};

TEST_F(StatsReporterTest, FormatResolvesByExtension) {
  auto resolved = [&](const std::string& name) {
    StatsReporter reporter(registry_, StatsReporterOptions{dir_ + name});
    return reporter.resolved_format();
  };
  EXPECT_EQ(resolved("/m.json"), StatsFormat::kJson);
  EXPECT_EQ(resolved("/m.bin"), StatsFormat::kJson);  // unknown -> JSON
  EXPECT_EQ(resolved("/m.prom"), StatsFormat::kText);
  EXPECT_EQ(resolved("/m.txt"), StatsFormat::kText);
  EXPECT_EQ(resolved("/m.csv"), StatsFormat::kCsv);
}

TEST_F(StatsReporterTest, WriteOnceJsonIsParseableAndReplaces) {
  const std::string path = dir_ + "/metrics.json";
  StatsReporter reporter(registry_, StatsReporterOptions{path});
  ASSERT_TRUE(reporter.WriteOnce().ok());
  registry_.GetCounter("test.events_total").Add(1);
  ASSERT_TRUE(reporter.WriteOnce().ok());
  EXPECT_EQ(reporter.snapshots_written(), 2u);

  // The file holds exactly the latest snapshot, not an accumulation.
  auto parsed = ReadJsonDumpFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->counters.size(), 1u);
  EXPECT_EQ(parsed->counters[0].value, 6u);
}

TEST_F(StatsReporterTest, WriteOncePromIsPrometheusText) {
  const std::string path = dir_ + "/metrics.prom";
  StatsReporter reporter(registry_, StatsReporterOptions{path});
  ASSERT_TRUE(reporter.WriteOnce().ok());
  const std::string text = ReadFile(path);
  EXPECT_NE(text.find("# TYPE streamlink_test_events_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("streamlink_test_events_total 5\n"), std::string::npos);
}

TEST_F(StatsReporterTest, CsvAppendsLongFormatRowsWithOneHeader) {
  const std::string path = dir_ + "/metrics.csv";
  StatsReporter reporter(registry_, StatsReporterOptions{path});
  ASSERT_TRUE(reporter.WriteOnce().ok());
  ASSERT_TRUE(reporter.WriteOnce().ok());
  const std::string csv = ReadFile(path);

  // One header even across appends.
  EXPECT_EQ(csv.find("elapsed_seconds,metric,value\n"), 0u);
  EXPECT_EQ(csv.find("elapsed_seconds", 1), std::string::npos);
  // Each snapshot contributed a row per metric; histograms expand to
  // count/mean/p50/p99 series.
  size_t counter_rows = 0;
  for (size_t at = csv.find(",test.events_total,"); at != std::string::npos;
       at = csv.find(",test.events_total,", at + 1)) {
    ++counter_rows;
  }
  EXPECT_EQ(counter_rows, 2u);
  EXPECT_NE(csv.find(",test.ns.count,1"), std::string::npos) << csv;
  EXPECT_NE(csv.find(",test.ns.p99,"), std::string::npos);
}

TEST_F(StatsReporterTest, StartValidatesOptions) {
  StatsReporter no_path(registry_, StatsReporterOptions{""});
  EXPECT_EQ(no_path.Start().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(no_path.WriteOnce().ok());

  StatsReporterOptions bad_period{dir_ + "/m.json"};
  bad_period.period_seconds = 0.0;
  StatsReporter zero(registry_, bad_period);
  EXPECT_EQ(zero.Start().code(), StatusCode::kInvalidArgument);
}

TEST_F(StatsReporterTest, PeriodicThreadWritesUntilStopped) {
  StatsReporterOptions options{dir_ + "/periodic.json"};
  options.period_seconds = 0.01;
  StatsReporter reporter(registry_, options);
  ASSERT_TRUE(reporter.Start().ok());
  // Starting twice is a FailedPrecondition, not a second thread.
  EXPECT_EQ(reporter.Start().code(), StatusCode::kFailedPrecondition);

  while (reporter.snapshots_written() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  reporter.Stop();
  const uint64_t at_stop = reporter.snapshots_written();
  EXPECT_GE(at_stop, 3u);
  // Stop is idempotent and the thread really stopped.
  reporter.Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(reporter.snapshots_written(), at_stop);

  auto parsed = ReadJsonDumpFile(options.path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->counters.size(), 1u);
  EXPECT_EQ(parsed->counters[0].name, "test.events_total");

  // A stopped reporter can still be used for a final explicit snapshot.
  EXPECT_TRUE(reporter.WriteOnce().ok());
}

TEST_F(StatsReporterTest, WriteFailsCleanlyOnBadPath) {
  StatsReporter reporter(registry_,
                         StatsReporterOptions{"/nonexistent/dir/m.json"});
  EXPECT_EQ(reporter.WriteOnce().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace obs
}  // namespace streamlink

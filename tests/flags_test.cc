#include "util/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace streamlink {
namespace {

TEST(FlagParser, ParsesEqualsForm) {
  FlagParser f({"--k=32", "--out=res.csv"});
  EXPECT_EQ(f.GetInt("k", 0), 32);
  EXPECT_EQ(f.GetString("out", ""), "res.csv");
}

TEST(FlagParser, ParsesSpaceForm) {
  FlagParser f({"--k", "64", "--name", "ba"});
  EXPECT_EQ(f.GetInt("k", 0), 64);
  EXPECT_EQ(f.GetString("name", ""), "ba");
}

TEST(FlagParser, BareFlagMeansTrue) {
  FlagParser f({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.Has("verbose"));
}

TEST(FlagParser, BoolSpellings) {
  FlagParser f({"--a=true", "--b=1", "--c=yes", "--d=on", "--e=false",
                "--f=0", "--g=whatever"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_TRUE(f.GetBool("b", false));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_TRUE(f.GetBool("d", false));
  EXPECT_FALSE(f.GetBool("e", true));
  EXPECT_FALSE(f.GetBool("f", true));
  EXPECT_FALSE(f.GetBool("g", true));
}

TEST(FlagParser, DefaultsWhenAbsent) {
  FlagParser f(std::vector<std::string>{});
  EXPECT_EQ(f.GetInt("k", 42), 42);
  EXPECT_EQ(f.GetString("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 2.5), 2.5);
  EXPECT_TRUE(f.GetBool("b", true));
  EXPECT_FALSE(f.Has("k"));
}

TEST(FlagParser, ParsesDoubles) {
  FlagParser f({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.0), 0.25);
}

TEST(FlagParser, NegativeIntegers) {
  FlagParser f({"--offset=-7"});
  EXPECT_EQ(f.GetInt("offset", 0), -7);
}

TEST(FlagParser, CollectsPositionals) {
  FlagParser f({"input.txt", "--k=3", "more"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(FlagParser, SpaceFormDoesNotConsumeNextFlag) {
  FlagParser f({"--a", "--b=2"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_EQ(f.GetInt("b", 0), 2);
}

TEST(FlagParser, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "--k=9"};
  FlagParser f(2, argv);
  EXPECT_EQ(f.GetInt("k", 0), 9);
}

TEST(FlagParser, CheckUnknownAcceptsKnown) {
  FlagParser f({"--k=1", "--out=x"});
  EXPECT_TRUE(f.CheckUnknown({"k", "out", "extra"}).ok());
}

TEST(FlagParser, CheckUnknownRejectsTypos) {
  FlagParser f({"--sketchsize=64"});
  Status s = f.CheckUnknown({"sketch_size"});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("sketchsize"), std::string::npos);
}

TEST(FlagParser, LastValueWinsOnRepeat) {
  FlagParser f({"--k=1", "--k=2"});
  EXPECT_EQ(f.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace streamlink

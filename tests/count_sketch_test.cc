#include "sketch/count_sketch.h"

#include "sketch/countmin.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>

#include "util/random.h"

namespace streamlink {
namespace {

TEST(CountSketch, Dimensions) {
  CountSketch s(5, 128, 1);
  EXPECT_EQ(s.depth(), 5u);
  EXPECT_EQ(s.width(), 128u);
}

TEST(CountSketchDeathTest, BadDimensionsAbort) {
  EXPECT_DEATH(CountSketch(5, 1, 1), "width");
}

TEST(CountSketch, EmptyEstimatesZero) {
  CountSketch s(5, 64, 2);
  EXPECT_EQ(s.Estimate(123), 0);
}

TEST(CountSketch, SingleKeyIsExact) {
  CountSketch s(5, 64, 3);
  s.Update(42, 10);
  EXPECT_EQ(s.Estimate(42), 10);
}

TEST(CountSketch, SupportsDeletions) {
  CountSketch s(5, 64, 4);
  s.Update(7, 10);
  s.Update(7, -4);
  EXPECT_EQ(s.Estimate(7), 6);
  s.Update(7, -6);
  EXPECT_EQ(s.Estimate(7), 0);
}

TEST(CountSketch, ApproximatelyUnbiasedOnSkewedStream) {
  CountSketch s(7, 256, 5);
  std::map<uint64_t, int64_t> truth;
  Rng rng(6);
  for (int i = 0; i < 50000; ++i) {
    uint64_t key = rng.NextBounded(1 + rng.NextBounded(500));
    s.Update(key);
    ++truth[key];
  }
  // Mean signed error over all keys should be near zero (unbiased), and
  // heavy keys should be accurately recovered.
  double signed_error_sum = 0.0;
  int count = 0;
  for (const auto& [key, freq] : truth) {
    signed_error_sum += static_cast<double>(s.Estimate(key) - freq);
    ++count;
  }
  EXPECT_LT(std::abs(signed_error_sum / count), 20.0);
  // Heaviest key: estimate within 10%.
  auto heaviest = std::max_element(
      truth.begin(), truth.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_NEAR(static_cast<double>(s.Estimate(heaviest->first)),
              static_cast<double>(heaviest->second),
              0.1 * static_cast<double>(heaviest->second));
}

TEST(CountSketch, MergeEqualsCombinedStream) {
  CountSketch a(5, 64, 7), b(5, 64, 7), combined(5, 64, 7);
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    uint64_t key = rng.NextBounded(100);
    a.Update(key);
    combined.Update(key);
  }
  for (int i = 0; i < 2000; ++i) {
    uint64_t key = rng.NextBounded(100);
    b.Update(key);
    combined.Update(key);
  }
  a.MergeFrom(b);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(a.Estimate(key), combined.Estimate(key)) << key;
  }
}

TEST(CountSketchDeathTest, MergeIncompatibleAborts) {
  CountSketch a(5, 64, 1), b(5, 64, 2), c(5, 128, 1);
  EXPECT_DEATH(a.MergeFrom(b), "incompatible");
  EXPECT_DEATH(a.MergeFrom(c), "incompatible");
}

TEST(CountSketch, TighterThanCountMinOnSkewedTail) {
  // On a heavily skewed stream, the light keys' estimates from
  // count-sketch (unbiased, L2-bounded) should have smaller absolute
  // error on average than count-min's one-sided overestimates at equal
  // space. This is the classic CS-vs-CM contrast.
  const uint32_t depth = 5, width = 128;
  CountSketch cs(depth, width, 9);
  CountMinSketch cm(depth, width, 9);
  std::map<uint64_t, int64_t> truth;
  Rng rng(10);
  for (int i = 0; i < 100000; ++i) {
    // One huge key plus a long tail.
    uint64_t key = rng.NextBernoulli(0.5) ? 0 : 1 + rng.NextBounded(2000);
    cs.Update(key);
    cm.Update(key);
    ++truth[key];
  }
  double cs_error = 0.0, cm_error = 0.0;
  int tail_keys = 0;
  for (const auto& [key, freq] : truth) {
    if (key == 0) continue;
    cs_error += std::abs(static_cast<double>(cs.Estimate(key) - freq));
    cm_error += std::abs(static_cast<double>(cm.Estimate(key)) -
                         static_cast<double>(freq));
    ++tail_keys;
  }
  // Tail keys have frequency ~25; the 50k-heavy key pollutes count-min's
  // one-sided counters far more than count-sketch's signed median.
  EXPECT_LT(cs_error / tail_keys, 0.5 * cm_error / tail_keys);
}

}  // namespace
}  // namespace streamlink

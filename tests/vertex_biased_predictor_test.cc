#include "core/vertex_biased_predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_predictor.h"
#include "core/minhash_predictor.h"
#include "eval/experiment.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "util/random.h"

namespace streamlink {
namespace {

EdgeList ReferenceStream() {
  return {{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 5}, {2, 3}};
}

TEST(VertexBiasedPredictor, NameAndDefaults) {
  VertexBiasedPredictor p;
  EXPECT_EQ(p.name(), "vertex_biased");
  EXPECT_EQ(p.options().num_hashes, 32u);
  EXPECT_EQ(p.options().num_weighted_samples, 32u);
}

TEST(VertexBiasedPredictor, SamplingWeightIsPositiveAndDecreasing) {
  double prev = 1e9;
  for (uint32_t d : {0u, 1u, 2u, 10u, 1000u, 1000000u}) {
    double w = VertexBiasedPredictor::SamplingWeight(d);
    EXPECT_GT(w, 0.0);
    EXPECT_LT(w, prev);
    prev = w;
  }
}

TEST(VertexBiasedPredictor, ExactOnSmallNeighborhoods) {
  // Unsaturated samplers hold full neighborhoods: AA is exact.
  VertexBiasedPredictor p;
  FeedStream(p, ReferenceStream());
  OverlapEstimate e = p.EstimateOverlap(0, 1);
  EXPECT_NEAR(e.adamic_adar, 2.0 / std::log(3.0), 1e-9);
  EXPECT_NEAR(e.resource_allocation, 2.0 / 3.0, 1e-9);
}

TEST(VertexBiasedPredictor, JaccardFromMinHashPart) {
  VertexBiasedPredictor p;
  FeedStream(p, {{0, 10}, {0, 11}, {1, 10}, {1, 11}});
  EXPECT_DOUBLE_EQ(p.EstimateOverlap(0, 1).jaccard, 1.0);
}

TEST(VertexBiasedPredictor, DegreesTracked) {
  VertexBiasedPredictor p;
  FeedStream(p, ReferenceStream());
  EXPECT_EQ(p.Degree(0), 3u);
  EXPECT_EQ(p.Degree(5), 1u);
}

TEST(VertexBiasedPredictor, UnseenVerticesZero) {
  VertexBiasedPredictor p;
  FeedStream(p, ReferenceStream());
  OverlapEstimate e = p.EstimateOverlap(40, 50);
  EXPECT_DOUBLE_EQ(e.adamic_adar, 0.0);
  EXPECT_DOUBLE_EQ(e.jaccard, 0.0);
}

TEST(VertexBiasedPredictor, DeterministicForSeed) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"rmat", 0.02, 41});
  VertexBiasedPredictorOptions options;
  options.seed = 5;
  VertexBiasedPredictor a(options), b(options);
  FeedStream(a, g.edges);
  FeedStream(b, g.edges);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    EXPECT_DOUBLE_EQ(a.EstimateOverlap(u, v).adamic_adar,
                     b.EstimateOverlap(u, v).adamic_adar);
  }
}

TEST(VertexBiasedPredictor, AdamicAdarReasonableOnSkewedWorkload) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"rmat", 0.05, 42});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(2);
  auto pairs = SampleOverlappingPairs(csr, 300, rng);
  PredictorConfig config;
  config.kind = "vertex_biased";
  config.sketch_size = 256;
  AccuracyReport report = MeasureAccuracy(g, config, pairs);
  EXPECT_LT(report.adamic_adar.MeanRelativeError(), 0.5);
  EXPECT_LT(report.jaccard.MeanAbsoluteError(), 0.12);
}

TEST(VertexBiasedPredictor, MemoryBoundedPerVertex) {
  VertexBiasedPredictorOptions options;
  options.num_hashes = 16;
  options.num_weighted_samples = 16;
  VertexBiasedPredictor p(options);
  EdgeList edges;
  for (VertexId i = 0; i < 400; ++i) {
    for (VertexId j = 1; j <= 25; ++j) {
      edges.push_back({i, static_cast<VertexId>((i + j * 53) % 400)});
    }
  }
  FeedStream(p, edges);
  double per_vertex =
      static_cast<double>(p.MemoryBytes()) / p.num_vertices();
  // 16 minhash slots (16B) + 16 weighted entries (24B) + degree ≈ 700B.
  EXPECT_LT(per_vertex, 1500.0);
}

TEST(VertexBiasedPredictor, BiasReducesAaErrorVsUniformAtEqualSpace) {
  // The headline ablation (T8): on a skewed graph at matched space budget,
  // the vertex-biased AA estimator should not do *worse* than the uniform
  // (MinHash arg-min) AA estimator; typically it is meaningfully better on
  // high-variance pairs. To keep the test robust we compare aggregate MRE
  // with generous slack.
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"rmat", 0.08, 43});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(3);
  auto pairs = SampleOverlappingPairs(csr, 500, rng);

  PredictorConfig uniform;
  uniform.kind = "minhash";
  uniform.sketch_size = 64;
  AccuracyReport uniform_report = MeasureAccuracy(g, uniform, pairs);

  PredictorConfig biased;
  biased.kind = "vertex_biased";
  biased.sketch_size = 64;  // split 32/32 internally
  AccuracyReport biased_report = MeasureAccuracy(g, biased, pairs);

  EXPECT_LT(biased_report.adamic_adar.MeanRelativeError(),
            uniform_report.adamic_adar.MeanRelativeError() * 1.5);
}

}  // namespace
}  // namespace streamlink

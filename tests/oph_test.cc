#include "sketch/oph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/random.h"

namespace streamlink {
namespace {

constexpr uint64_t kSeed = 0x09c4;

OphSketch SketchOf(const std::vector<uint64_t>& items, uint32_t bins) {
  OphSketch s(bins, kSeed);
  for (uint64_t x : items) s.Update(x);
  return s;
}

TEST(OphSketch, StartsEmpty) {
  OphSketch s(16, kSeed);
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.num_bins(), 16u);
  EXPECT_EQ(s.non_empty_bins(), 0u);
}

TEST(OphSketchDeathTest, TooFewBinsAborts) {
  EXPECT_DEATH(OphSketch(1, kSeed), "at least 2 bins");
}

TEST(OphSketch, UpdateIsIdempotentAndOrderIndependent) {
  OphSketch a = SketchOf({1, 2, 3, 4, 5}, 16);
  OphSketch b = SketchOf({5, 4, 3, 2, 1, 1, 2}, 16);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.bin(i).rank, b.bin(i).rank);
    EXPECT_EQ(a.bin(i).item, b.bin(i).item);
  }
}

TEST(OphSketch, NonEmptyCountGrowsToSaturation) {
  OphSketch s(8, kSeed);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) s.Update(rng.Next());
  EXPECT_EQ(s.non_empty_bins(), 8u);
}

TEST(OphSketch, IdenticalSetsMatchPerfectly) {
  OphSketch a = SketchOf({10, 20, 30}, 32);
  OphSketch b = SketchOf({30, 10, 20}, 32);
  EXPECT_DOUBLE_EQ(OphSketch::EstimateJaccard(a, b), 1.0);
}

TEST(OphSketch, EmptyEstimatesZero) {
  OphSketch a(8, kSeed);
  OphSketch b = SketchOf({1}, 8);
  EXPECT_DOUBLE_EQ(OphSketch::EstimateJaccard(a, b), 0.0);
}

TEST(OphSketch, DensifiedFillsEveryBinFromDonors) {
  OphSketch s = SketchOf({1, 2, 3}, 32);  // most bins empty
  auto densified = s.Densified();
  std::set<uint64_t> source_items = {1, 2, 3};
  for (const auto& bin : densified) {
    EXPECT_NE(bin.rank, ~0ULL);
    EXPECT_EQ(source_items.count(bin.item), 1u);
  }
}

TEST(OphSketch, DensificationIsConsistentAcrossEqualSets) {
  // Two sketches of the same set must densify identically, otherwise
  // sparse sets could not reach Jaccard 1 with themselves.
  OphSketch a = SketchOf({100, 200}, 64);
  OphSketch b = SketchOf({200, 100}, 64);
  auto da = a.Densified();
  auto db = b.Densified();
  for (uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(da[i].rank, db[i].rank) << "bin " << i;
  }
}

TEST(OphSketch, MergeUnionEqualsSketchOfUnion) {
  OphSketch a = SketchOf({1, 2, 3, 4}, 16);
  OphSketch b = SketchOf({3, 4, 5, 6}, 16);
  OphSketch expected = SketchOf({1, 2, 3, 4, 5, 6}, 16);
  a.MergeUnion(b);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.bin(i).rank, expected.bin(i).rank);
  }
  EXPECT_EQ(a.non_empty_bins(), expected.non_empty_bins());
}

TEST(OphSketchDeathTest, IncompatibleComparisonsAbort) {
  OphSketch a(8, 1), b(8, 2), c(16, 1);
  a.Update(1);
  b.Update(1);
  EXPECT_DEATH(OphSketch::CountMatches(a, b, nullptr), "incompatible");
  EXPECT_DEATH(a.MergeUnion(c), "incompatible");
}

TEST(OphSketch, DisjointLargeSetsEstimateNearZero) {
  Rng rng(2);
  std::vector<uint64_t> av, bv;
  for (int i = 0; i < 2000; ++i) {
    av.push_back(rng.Next());
    bv.push_back(rng.Next());
  }
  OphSketch a = SketchOf(av, 128);
  OphSketch b = SketchOf(bv, 128);
  EXPECT_LT(OphSketch::EstimateJaccard(a, b), 0.05);
}

/// Property: OPH estimation concentrates like MinHash once the sets are a
/// few times larger than the bin count.
class OphAccuracy : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OphAccuracy, EstimatesWithinEnvelopeOnLargeSets) {
  const uint32_t bins = GetParam();
  Rng rng(bins);
  const int size = 4000;
  for (double overlap : {0.2, 0.6, 0.9}) {
    int shared = static_cast<int>(overlap * size);
    std::vector<uint64_t> av, bv;
    for (int i = 0; i < shared; ++i) {
      uint64_t x = rng.Next();
      av.push_back(x);
      bv.push_back(x);
    }
    for (int i = shared; i < size; ++i) {
      av.push_back(rng.Next());
      bv.push_back(rng.Next());
    }
    OphSketch a = SketchOf(av, bins);
    OphSketch b = SketchOf(bv, bins);
    double truth = static_cast<double>(shared) / (2 * size - shared);
    double est = OphSketch::EstimateJaccard(a, b);
    // OPH bins are slightly correlated; use a 6-sigma binomial envelope.
    double sigma = std::sqrt(truth * (1 - truth) / bins) + 1e-3;
    EXPECT_NEAR(est, truth, 6 * sigma) << "bins=" << bins;
  }
}

INSTANTIATE_TEST_SUITE_P(BinCounts, OphAccuracy,
                         ::testing::Values(64u, 256u, 1024u));

TEST(OphSketch, MatchedItemsComeFromIntersection) {
  Rng rng(3);
  std::vector<uint64_t> shared, av, bv;
  for (int i = 0; i < 100; ++i) shared.push_back(rng.Next());
  av = shared;
  bv = shared;
  for (int i = 0; i < 100; ++i) {
    av.push_back(rng.Next());
    bv.push_back(rng.Next());
  }
  OphSketch a = SketchOf(av, 64);
  OphSketch b = SketchOf(bv, 64);
  std::set<uint64_t> shared_set(shared.begin(), shared.end());
  std::vector<uint64_t> items;
  OphSketch::CountMatches(a, b, &items);
  ASSERT_FALSE(items.empty());
  for (uint64_t item : items) {
    EXPECT_EQ(shared_set.count(item), 1u) << item;
  }
}

}  // namespace
}  // namespace streamlink

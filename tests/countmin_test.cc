#include "sketch/countmin.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "util/random.h"

namespace streamlink {
namespace {

TEST(CountMin, DimensionsAsRequested) {
  CountMinSketch s(4, 100, 1);
  EXPECT_EQ(s.depth(), 4u);
  EXPECT_EQ(s.width(), 100u);
  EXPECT_EQ(s.total_count(), 0u);
}

TEST(CountMinDeathTest, BadDimensionsAbort) {
  // depth=0 is caught by the HashFamily the sketch builds internally.
  EXPECT_DEATH(CountMinSketch(0, 10, 1), "at least one");
  EXPECT_DEATH(CountMinSketch(2, 1, 1), "width");
}

TEST(CountMin, UnseenKeyEstimatesZeroWhenEmpty) {
  CountMinSketch s(4, 128, 2);
  EXPECT_EQ(s.Estimate(12345), 0u);
}

TEST(CountMin, NeverUndercounts) {
  CountMinSketch s(4, 64, 3);
  std::map<uint64_t, uint64_t> truth;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    uint64_t key = rng.NextBounded(500);
    uint64_t count = 1 + rng.NextBounded(3);
    s.Update(key, count);
    truth[key] += count;
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(s.Estimate(key), count) << "key " << key;
  }
}

TEST(CountMin, ConservativeNeverUndercounts) {
  CountMinSketch s(4, 64, 4);
  std::map<uint64_t, uint64_t> truth;
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    uint64_t key = rng.NextBounded(500);
    s.UpdateConservative(key);
    truth[key] += 1;
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(s.Estimate(key), count) << "key " << key;
  }
}

TEST(CountMin, ConservativeIsNoLooserThanStandard) {
  CountMinSketch standard(4, 64, 7), conservative(4, 64, 7);
  Rng rng(8);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 20000; ++i) keys.push_back(rng.NextBounded(1000));
  for (uint64_t k : keys) {
    standard.Update(k);
    conservative.UpdateConservative(k);
  }
  uint64_t total_standard = 0, total_conservative = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    total_standard += standard.Estimate(k);
    total_conservative += conservative.Estimate(k);
  }
  EXPECT_LE(total_conservative, total_standard);
}

TEST(CountMin, ErrorWithinEpsilonBound) {
  // Point error ≤ ε·N with probability ≥ 1−δ; check on a skewed stream.
  const double epsilon = 0.01, delta = 0.01;
  CountMinSketch s = CountMinSketch::FromErrorBounds(epsilon, delta, 9);
  Rng rng(10);
  std::map<uint64_t, uint64_t> truth;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    // Zipf-ish: low keys much more frequent.
    uint64_t key = rng.NextBounded(1 + rng.NextBounded(1000));
    s.Update(key);
    truth[key] += 1;
  }
  int violations = 0;
  for (const auto& [key, count] : truth) {
    if (s.Estimate(key) > count + static_cast<uint64_t>(epsilon * n)) {
      ++violations;
    }
  }
  // Allow a fewδ-level violations.
  EXPECT_LE(violations, static_cast<int>(truth.size() * 5 * delta) + 1);
}

TEST(CountMin, FromErrorBoundsSizes) {
  CountMinSketch s = CountMinSketch::FromErrorBounds(0.01, 0.001, 11);
  EXPECT_GE(s.width(), 271u);  // e/0.01 ≈ 271.8
  EXPECT_GE(s.depth(), 7u);    // ln(1000) ≈ 6.9
}

TEST(CountMin, TotalCountTracksUpdates) {
  CountMinSketch s(2, 16, 12);
  s.Update(1, 5);
  s.UpdateConservative(2, 3);
  EXPECT_EQ(s.total_count(), 8u);
}

TEST(CountMin, MemoryScalesWithDimensions) {
  CountMinSketch small(2, 16, 13), large(8, 1024, 13);
  EXPECT_LT(small.MemoryBytes(), large.MemoryBytes());
}

}  // namespace
}  // namespace streamlink

#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace streamlink {
namespace {

TEST(Logging, ThresholdRoundTrips) {
  LogLevel old_level = SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(old_level);
  EXPECT_EQ(GetLogThreshold(), old_level);
}

TEST(Logging, InfoBelowThresholdDoesNotCrash) {
  LogLevel old_level = SetLogThreshold(LogLevel::kError);
  SL_LOG(kInfo) << "suppressed message " << 42;
  SL_LOG(kWarning) << "also suppressed";
  SetLogThreshold(old_level);
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(SL_LOG(kFatal) << "boom", "boom");
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SL_CHECK(1 == 2) << "math broke", "Check failed: 1 == 2");
}

TEST(Logging, CheckPassIsSilent) {
  SL_CHECK(true) << "never shown";
  SL_CHECK(2 + 2 == 4);
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(SL_CHECK_OK(Status::NotFound("gone")), "NotFound: gone");
}

TEST(Logging, CheckOkPassesOnOk) { SL_CHECK_OK(Status::Ok()); }

TEST(Logging, DcheckPassIsSilent) { SL_DCHECK(true); }

#ifndef NDEBUG
TEST(LoggingDeathTest, DcheckFailsInDebug) {
  EXPECT_DEATH(SL_DCHECK(false) << "debug only", "Check failed");
}
#endif

}  // namespace
}  // namespace streamlink

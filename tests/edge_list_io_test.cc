#include "graph/edge_list_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace streamlink {
namespace {

TEST(ParseEdgeList, BasicWhitespaceSeparated) {
  auto result = ParseEdgeList("0 1\n1 2\n2 0\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->edges.size(), 3u);
  EXPECT_EQ(result->num_vertices, 3u);
  EXPECT_EQ(result->edges[0], Edge(0, 1));
}

TEST(ParseEdgeList, SkipsCommentsAndBlankLines) {
  auto result = ParseEdgeList("# header\n% another style\n\n  \n3 4\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges.size(), 1u);
}

TEST(ParseEdgeList, TabsAndExtraSpaces) {
  auto result = ParseEdgeList("  0\t7 \n\t8   9\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges.size(), 2u);
}

TEST(ParseEdgeList, RemapsSparseIdsDensely) {
  auto result = ParseEdgeList("1000000 2000000\n2000000 3000000\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_vertices, 3u);
  EXPECT_EQ(result->edges[0], Edge(0, 1));
  EXPECT_EQ(result->edges[1], Edge(1, 2));
}

TEST(ParseEdgeList, VerbatimIdsWithoutRemap) {
  EdgeListReadOptions options;
  options.remap_ids = false;
  auto result = ParseEdgeList("10 20\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges[0], Edge(10, 20));
  EXPECT_EQ(result->num_vertices, 21u);
}

TEST(ParseEdgeList, VerbatimIdsTooLargeFail) {
  EdgeListReadOptions options;
  options.remap_ids = false;
  auto result = ParseEdgeList("0 99999999999\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(ParseEdgeList, SelfLoopsSkippedByDefault) {
  auto result = ParseEdgeList("5 5\n1 2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges.size(), 1u);
}

TEST(ParseEdgeList, SelfLoopsKeptWhenRequested) {
  EdgeListReadOptions options;
  options.skip_self_loops = false;
  auto result = ParseEdgeList("5 5\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges.size(), 1u);
  EXPECT_TRUE(result->edges[0].IsSelfLoop());
}

TEST(ParseEdgeList, MaxEdgesTruncates) {
  EdgeListReadOptions options;
  options.max_edges = 2;
  auto result = ParseEdgeList("0 1\n1 2\n2 3\n3 4\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges.size(), 2u);
}

TEST(ParseEdgeList, MalformedLineReportsLineNumber) {
  auto result = ParseEdgeList("0 1\nnot an edge\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(ParseEdgeList, MissingSecondEndpointFails) {
  auto result = ParseEdgeList("42\n");
  EXPECT_FALSE(result.ok());
}

TEST(ReadEdgeList, MissingFileIsIoError) {
  auto result = ReadEdgeList("/nonexistent/file.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(EdgeListIo, WriteThenReadRoundTrips) {
  std::string path = ::testing::TempDir() + "/edge_io_roundtrip.txt";
  EdgeList edges = {{0, 1}, {1, 2}, {0, 3}};
  ASSERT_TRUE(WriteEdgeList(path, edges).ok());
  auto result = ReadEdgeList(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges, edges);
  std::remove(path.c_str());
}

TEST(EdgeListIo, WriteToBadPathFails) {
  EXPECT_FALSE(WriteEdgeList("/nonexistent-dir-zzz/x.txt", {}).ok());
}

}  // namespace
}  // namespace streamlink

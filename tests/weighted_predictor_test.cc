#include "core/weighted_predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/minhash_predictor.h"
#include "gen/workloads.h"
#include "graph/weighted_graph.h"
#include "util/hashing.h"
#include "util/random.h"

namespace streamlink {
namespace {

/// Deterministic weight for an edge: lognormal-ish from a hash.
double EdgeWeight(const Edge& e, uint64_t seed) {
  Edge c = e.Canonical();
  uint64_t key = (static_cast<uint64_t>(c.u) << 32) | c.v;
  return 0.25 + 4.0 * HashToUnit(HashU64(key, seed));
}

TEST(WeightedGraph, AccumulatesAndSymmetric) {
  WeightedAdjacencyGraph g;
  EXPECT_TRUE(g.AddEdge(0, 1, 2.0));
  EXPECT_FALSE(g.AddEdge(1, 0, 3.0));  // same edge: accumulate
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.Strength(0), 5.0);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(WeightedGraphDeathTest, NonPositiveWeightAborts) {
  WeightedAdjacencyGraph g;
  EXPECT_DEATH(g.AddEdge(0, 1, 0.0), "positive");
}

TEST(WeightedGraph, RejectsSelfLoops) {
  WeightedAdjacencyGraph g;
  EXPECT_FALSE(g.AddEdge(2, 2, 1.0));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(WeightedGraph, ExactOverlapHandComputed) {
  // N(0) = {2: 1.0, 3: 4.0}; N(1) = {2: 3.0, 4: 2.0}.
  WeightedAdjacencyGraph g;
  g.AddEdge(0, 2, 1.0);
  g.AddEdge(0, 3, 4.0);
  g.AddEdge(1, 2, 3.0);
  g.AddEdge(1, 4, 2.0);
  WeightedOverlap o = g.ComputeOverlap(0, 1);
  EXPECT_DOUBLE_EQ(o.strength_u, 5.0);
  EXPECT_DOUBLE_EQ(o.strength_v, 5.0);
  EXPECT_DOUBLE_EQ(o.min_sum, 1.0);           // min(1, 3) on shared nbr 2
  EXPECT_DOUBLE_EQ(o.max_sum, 9.0);           // 3 + 4 + 2
  EXPECT_DOUBLE_EQ(o.GeneralizedJaccard(), 1.0 / 9.0);
}

TEST(WeightedGraph, IsolatedVerticesZero) {
  WeightedAdjacencyGraph g;
  g.AddEdge(0, 1, 1.0);
  WeightedOverlap o = g.ComputeOverlap(5, 6);
  EXPECT_DOUBLE_EQ(o.GeneralizedJaccard(), 0.0);
}

TEST(WeightedPredictor, NameAndCounters) {
  WeightedJaccardPredictor p;
  EXPECT_EQ(p.name(), "weighted_icws");
  p.OnWeightedEdge(0, 1, 2.5);
  p.OnWeightedEdge(3, 3, 1.0);  // self-loop ignored
  EXPECT_EQ(p.edges_processed(), 1u);
  EXPECT_DOUBLE_EQ(p.Strength(0), 2.5);
  EXPECT_DOUBLE_EQ(p.Strength(1), 2.5);
}

TEST(WeightedPredictor, IdenticalWeightedNeighborhoods) {
  WeightedJaccardPredictor p;
  p.OnWeightedEdge(0, 10, 2.0);
  p.OnWeightedEdge(0, 11, 5.0);
  p.OnWeightedEdge(1, 10, 2.0);
  p.OnWeightedEdge(1, 11, 5.0);
  auto est = p.Estimate(0, 1);
  EXPECT_DOUBLE_EQ(est.generalized_jaccard, 1.0);
  EXPECT_NEAR(est.min_sum, 7.0, 1e-9);
  EXPECT_NEAR(est.max_sum, 7.0, 1e-9);
}

TEST(WeightedPredictor, UnseenVerticesZero) {
  WeightedJaccardPredictor p;
  p.OnWeightedEdge(0, 1, 1.0);
  auto est = p.Estimate(7, 8);
  EXPECT_DOUBLE_EQ(est.generalized_jaccard, 0.0);
  EXPECT_DOUBLE_EQ(est.min_sum, 0.0);
}

TEST(WeightedPredictor, TracksExactGeneralizedJaccardOnWorkload) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", 0.03, 131});
  WeightedPredictorOptions options;
  options.num_slots = 256;
  WeightedJaccardPredictor sketch(options);
  WeightedAdjacencyGraph exact;
  for (const Edge& e : g.edges) {
    double w = EdgeWeight(e, 5);
    sketch.OnWeightedEdge(e.u, e.v, w);
    exact.AddEdge(e.u, e.v, w);
  }

  Rng rng(1);
  double jaccard_error = 0.0, min_sum_rel_error = 0.0;
  int count = 0, min_count = 0;
  for (int i = 0; i < 300; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    if (u == v) continue;
    WeightedOverlap truth = exact.ComputeOverlap(u, v);
    auto est = sketch.Estimate(u, v);
    EXPECT_NEAR(est.strength_u, truth.strength_u, 1e-9);
    jaccard_error +=
        std::abs(est.generalized_jaccard - truth.GeneralizedJaccard());
    ++count;
    if (truth.min_sum > 0) {
      min_sum_rel_error +=
          std::abs(est.min_sum - truth.min_sum) / truth.min_sum;
      ++min_count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_LT(jaccard_error / count, 0.03);
  if (min_count > 0) {
    EXPECT_LT(min_sum_rel_error / min_count, 0.6);
  }
}

TEST(WeightedPredictor, UnitWeightsMatchUnweightedJaccard) {
  // With all weights 1, generalized Jaccard equals set Jaccard; compare
  // against the unweighted MinHash predictor's target on a small graph.
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"er", 0.02, 132});
  WeightedPredictorOptions options;
  options.num_slots = 512;
  WeightedJaccardPredictor weighted(options);
  WeightedAdjacencyGraph exact;
  for (const Edge& e : g.edges) {
    weighted.OnWeightedEdge(e.u, e.v, 1.0);
    exact.AddEdge(e.u, e.v, 1.0);
  }
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    if (u == v) continue;
    double truth = exact.ComputeOverlap(u, v).GeneralizedJaccard();
    EXPECT_NEAR(weighted.Estimate(u, v).generalized_jaccard, truth, 0.12);
  }
}

TEST(WeightedPredictor, MemoryBoundedPerVertex) {
  WeightedPredictorOptions options;
  options.num_slots = 32;
  WeightedJaccardPredictor p(options);
  for (VertexId i = 0; i < 500; ++i) {
    for (VertexId j = 1; j <= 20; ++j) {
      p.OnWeightedEdge(i, (i + j * 37) % 500, 1.0 + j);
    }
  }
  double per_vertex = static_cast<double>(p.MemoryBytes()) / p.num_vertices();
  // 32 slots * 24 bytes + strength double + overheads.
  EXPECT_LT(per_vertex, 1600.0);
}

}  // namespace
}  // namespace streamlink

#include "net/admission.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/predictor_factory.h"
#include "net/load_gen.h"
#include "net/server.h"
#include "serve/query_service.h"
#include "util/logging.h"
#include "util/random.h"

namespace streamlink {
namespace net {
namespace {

// --- Unit tests for the pure decision function. -------------------------

ServeHealth FreshHealth() {
  ServeHealth health;
  health.has_snapshot = true;
  health.staleness_edges = 0;
  health.age_seconds = 0.0;
  health.servable = true;
  return health;
}

TEST(Admission, AdmitsWhenHealthyAndQueueHasRoom) {
  AdmissionPolicy policy;
  policy.queue_capacity = 4;
  AdmissionDecision d = Admit(policy, /*queue_depth=*/3, FreshHealth());
  EXPECT_TRUE(d.admit);
  EXPECT_EQ(d.retry_after_ms, 0u);
}

TEST(Admission, ShedsOnFullQueue) {
  AdmissionPolicy policy;
  policy.queue_capacity = 4;
  policy.retry_after_ms = 20;
  AdmissionDecision d = Admit(policy, /*queue_depth=*/4, FreshHealth());
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.reason, NackReason::kQueueFull);
  EXPECT_EQ(d.retry_after_ms, 20u);
}

TEST(Admission, ShedsWithoutSnapshot) {
  AdmissionDecision d = Admit(AdmissionPolicy{}, 0, ServeHealth{});
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.reason, NackReason::kStaleSnapshot);
}

TEST(Admission, ShedsOnStalenessEdges) {
  AdmissionPolicy policy;
  policy.max_staleness_edges = 100;
  ServeHealth health = FreshHealth();
  health.staleness_edges = 101;
  AdmissionDecision d = Admit(policy, 0, health);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.reason, NackReason::kStaleSnapshot);
  // At the bound is still fine.
  health.staleness_edges = 100;
  EXPECT_TRUE(Admit(policy, 0, health).admit);
}

TEST(Admission, ShedsOnSnapshotAge) {
  AdmissionPolicy policy;
  policy.max_snapshot_age_seconds = 1.0;
  ServeHealth health = FreshHealth();
  health.age_seconds = 2.0;
  AdmissionDecision d = Admit(policy, 0, health);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.reason, NackReason::kStaleSnapshot);
}

TEST(Admission, ZeroBoundsDisableStalenessChecks) {
  ServeHealth health = FreshHealth();
  health.staleness_edges = 1u << 30;
  health.age_seconds = 1e6;
  EXPECT_TRUE(Admit(AdmissionPolicy{}, 0, health).admit);
}

// --- End-to-end overload behaviour: under a queue-saturating burst the --
// --- server sheds (shed count > 0) and admitted-request latency stays ---
// --- bounded instead of growing with the backlog. -----------------------

constexpr VertexId kVertices = 64;
constexpr size_t kEdges = 500;

std::unique_ptr<LinkPredictor> BuildPredictor() {
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 32;
  config.seed = 17;
  auto predictor = MakePredictor(config);
  SL_CHECK(predictor.ok());
  Rng rng(7);
  for (size_t i = 0; i < kEdges; ++i) {
    Edge edge(static_cast<VertexId>(rng.NextBounded(kVertices)),
              static_cast<VertexId>(rng.NextBounded(kVertices)));
    (*predictor)->OnEdge(edge);
  }
  return std::move(*predictor);
}

TEST(AdmissionEndToEnd, OverloadShedsInsteadOfQueueing) {
  auto predictor = BuildPredictor();
  auto built =
      QueryServiceBuilder().InitialSnapshot(*predictor, kEdges).Build();
  ASSERT_TRUE(built.ok());
  std::unique_ptr<QueryService> service = std::move(*built);

  NetServerOptions options;
  options.workers = 2;
  options.admission.queue_capacity = 4;  // tiny on purpose
  NetServer server;
  ASSERT_TRUE(server.Start(*service, options).ok());

  // Each blocking connection holds one request in flight, so saturating a
  // queue of 4 takes more connections than capacity; 12 closed-loop
  // clients firing back-to-back keep the queue pinned at its bound.
  LoadGenOptions load;
  load.port = server.port();
  load.connections = 12;
  load.duration_seconds = 1.0;
  load.closed_loop = true;
  load.pairs_per_request = 64;
  load.node_universe = kVertices;
  Result<LoadReport> report = RunLoad(load);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GT(report->sent, 0u);
  EXPECT_EQ(report->errors, 0u);
  // The whole point of admission control: overload becomes NACKs.
  EXPECT_GT(report->shed, 0u);
  // And the queue bound keeps admitted-request latency finite: a request
  // admitted last waits at most ~capacity service times. Allow a fat
  // margin for CI noise; without shedding, 12 always-on clients against
  // 2 workers would queue without bound and p99 would blow past this.
  EXPECT_GT(report->ok, 0u);
  EXPECT_LT(report->service_p99_us, 1e6);

  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace streamlink

#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/configuration_model.h"
#include "graph/csr_graph.h"
#include "util/random.h"

namespace streamlink {
namespace {

CsrGraph Triangle() { return CsrGraph::FromEdges({{0, 1}, {1, 2}, {0, 2}}); }

CsrGraph CompleteGraph(VertexId n) {
  EdgeList edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return CsrGraph::FromEdges(edges);
}

CsrGraph Path(VertexId n) {
  EdgeList edges;
  for (VertexId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return CsrGraph::FromEdges(edges);
}

TEST(GraphStats, TriangleIsFullyClustered) {
  GraphStats s = ComputeGraphStats(Triangle());
  EXPECT_EQ(s.num_vertices, 3u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_EQ(s.num_triangles, 1u);
  EXPECT_EQ(s.num_wedges, 3u);
  EXPECT_DOUBLE_EQ(s.global_clustering, 1.0);
  EXPECT_DOUBLE_EQ(s.avg_local_clustering, 1.0);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.max_degree, 2u);
}

TEST(GraphStats, CompleteGraphTriangleCount) {
  // K6: C(6,3) = 20 triangles, clustering 1.
  GraphStats s = ComputeGraphStats(CompleteGraph(6));
  EXPECT_EQ(s.num_triangles, 20u);
  EXPECT_DOUBLE_EQ(s.global_clustering, 1.0);
}

TEST(GraphStats, PathHasNoTriangles) {
  GraphStats s = ComputeGraphStats(Path(10));
  EXPECT_EQ(s.num_triangles, 0u);
  EXPECT_DOUBLE_EQ(s.global_clustering, 0.0);
  EXPECT_EQ(s.num_wedges, 8u);  // 8 interior vertices of degree 2
}

TEST(GraphStats, CountsIsolatedVertices) {
  CsrGraph g = CsrGraph::FromEdges({{0, 1}}, 5);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_isolated, 3u);
}

TEST(GraphStats, EmptyGraphIsAllZero) {
  CsrGraph g = CsrGraph::FromEdges({});
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
  EXPECT_DOUBLE_EQ(s.global_clustering, 0.0);
}

TEST(GraphStats, SampledClusteringApproximatesExact) {
  // Watts-Strogatz-like ring lattice has known-high clustering; compare
  // sampled vs exact on a complete graph (clustering exactly 1).
  CsrGraph g = CompleteGraph(30);
  Rng rng(4);
  GraphStats exact = ComputeGraphStats(g);
  GraphStats sampled = ComputeGraphStatsSampled(g, 2000, rng);
  EXPECT_NEAR(sampled.global_clustering, exact.global_clustering, 0.02);
  EXPECT_EQ(sampled.num_vertices, exact.num_vertices);
  EXPECT_EQ(sampled.num_wedges, exact.num_wedges);
}

TEST(GraphStats, SampledClusteringOnMixedGraph) {
  // Triangle plus a long path: global clustering = 3 / (3 + path wedges).
  EdgeList edges = {{0, 1}, {1, 2}, {0, 2}};
  for (VertexId u = 10; u < 60; ++u) edges.emplace_back(u, u + 1);
  CsrGraph g = CsrGraph::FromEdges(edges);
  GraphStats exact = ComputeGraphStats(g);
  Rng rng(5);
  GraphStats sampled = ComputeGraphStatsSampled(g, 20000, rng);
  EXPECT_NEAR(sampled.global_clustering, exact.global_clustering, 0.02);
}

TEST(DegreeHistogram, CountsPerDegree) {
  CsrGraph g = CsrGraph::FromEdges({{0, 1}, {0, 2}, {0, 3}}, 5);
  auto hist = DegreeHistogram(g);
  ASSERT_EQ(hist.size(), 4u);  // max degree 3
  EXPECT_EQ(hist[0], 1u);      // vertex 4
  EXPECT_EQ(hist[1], 3u);      // vertices 1,2,3
  EXPECT_EQ(hist[2], 0u);
  EXPECT_EQ(hist[3], 1u);      // vertex 0
}

TEST(PowerLawFit, RecoversExponentOfSyntheticSequence) {
  Rng rng(6);
  auto degrees = PowerLawDegreeSequence(200000, 2.5, 2, 1000, rng);
  std::vector<uint64_t> hist;
  for (uint32_t d : degrees) {
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  double alpha = FitPowerLawExponent(hist, 2);
  EXPECT_NEAR(alpha, 2.5, 0.15);
}

TEST(PowerLawFit, TooFewSamplesReturnsZero) {
  std::vector<uint64_t> hist = {0, 0, 3};
  EXPECT_DOUBLE_EQ(FitPowerLawExponent(hist, 2), 0.0);
}

}  // namespace
}  // namespace streamlink

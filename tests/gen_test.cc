#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <unordered_set>

#include "gen/barabasi_albert.h"
#include "gen/configuration_model.h"
#include "gen/erdos_renyi.h"
#include "gen/pair_sampler.h"
#include "gen/rmat.h"
#include "gen/sbm.h"
#include "gen/stream_order.h"
#include "gen/watts_strogatz.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "graph/exact_measures.h"
#include "graph/graph_stats.h"
#include "util/random.h"

namespace streamlink {
namespace {

/// Checks the universal contract: simple graph (no self-loops, no
/// duplicate canonical edges), endpoints within num_vertices.
void ExpectSimpleGraph(const GeneratedGraph& g) {
  std::unordered_set<Edge, EdgeHash> seen;
  for (const Edge& e : g.edges) {
    EXPECT_FALSE(e.IsSelfLoop()) << g.name;
    EXPECT_LT(e.u, g.num_vertices) << g.name;
    EXPECT_LT(e.v, g.num_vertices) << g.name;
    EXPECT_TRUE(seen.insert(e.Canonical()).second)
        << g.name << " duplicate " << ToString(e);
  }
}

TEST(ErdosRenyi, ExactEdgeCount) {
  Rng rng(1);
  GeneratedGraph g = GenerateErdosRenyi({1000, 5000}, rng);
  EXPECT_EQ(g.edges.size(), 5000u);
  EXPECT_EQ(g.num_vertices, 1000u);
  ExpectSimpleGraph(g);
}

TEST(ErdosRenyi, DeterministicGivenSeed) {
  Rng a(9), b(9);
  GeneratedGraph ga = GenerateErdosRenyi({100, 200}, a);
  GeneratedGraph gb = GenerateErdosRenyi({100, 200}, b);
  EXPECT_EQ(ga.edges, gb.edges);
}

TEST(ErdosRenyiDeathTest, TooManyEdgesAborts) {
  Rng rng(2);
  EXPECT_DEATH(GenerateErdosRenyi({10, 100}, rng), "pairs exist");
}

TEST(ErdosRenyi, CompleteGraphPossible) {
  Rng rng(3);
  GeneratedGraph g = GenerateErdosRenyi({20, 190}, rng);
  EXPECT_EQ(g.edges.size(), 190u);
}

TEST(ErdosRenyiGnp, EdgeCountNearExpectation) {
  Rng rng(4);
  const VertexId n = 500;
  const double p = 0.05;
  GeneratedGraph g = GenerateErdosRenyiGnp(n, p, rng);
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(g.edges.size(), expected, 5 * std::sqrt(expected));
  ExpectSimpleGraph(g);
}

TEST(ErdosRenyiGnp, ZeroProbabilityIsEmpty) {
  Rng rng(5);
  EXPECT_TRUE(GenerateErdosRenyiGnp(100, 0.0, rng).edges.empty());
}

TEST(ErdosRenyiGnp, FullProbabilityIsComplete) {
  Rng rng(6);
  GeneratedGraph g = GenerateErdosRenyiGnp(30, 1.0, rng);
  EXPECT_EQ(g.edges.size(), 30u * 29 / 2);
  ExpectSimpleGraph(g);
}

TEST(BarabasiAlbert, SizesAndSimplicity) {
  Rng rng(7);
  GeneratedGraph g = GenerateBarabasiAlbert({2000, 5}, rng);
  EXPECT_EQ(g.num_vertices, 2000u);
  // seed clique C(6,2)=15 edges + (2000-6)*5.
  EXPECT_EQ(g.edges.size(), 15u + 1994u * 5);
  ExpectSimpleGraph(g);
}

TEST(BarabasiAlbert, ProducesSkewedDegrees) {
  Rng rng(8);
  GeneratedGraph g = GenerateBarabasiAlbert({5000, 4}, rng);
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  GraphStats stats = ComputeGraphStatsSampled(csr, 100, rng);
  // Hubs should be far above the mean (power-law tail).
  EXPECT_GT(stats.degree_skew, 5.0);
}

TEST(BarabasiAlbert, ArrivalOrderIsTemporal) {
  Rng rng(9);
  GeneratedGraph g = GenerateBarabasiAlbert({100, 2}, rng);
  // Each new vertex's edges appear after all earlier vertices' edges.
  VertexId max_new_vertex = 0;
  for (const Edge& e : g.edges) {
    VertexId newer = std::max(e.u, e.v);
    EXPECT_GE(newer, std::min(max_new_vertex, newer));
    max_new_vertex = std::max(max_new_vertex, newer);
  }
}

TEST(WattsStrogatz, KeepsEdgeCountAndSimplicity) {
  Rng rng(10);
  GeneratedGraph g = GenerateWattsStrogatz({1000, 5, 0.1}, rng);
  EXPECT_EQ(g.edges.size(), 5000u);
  ExpectSimpleGraph(g);
}

TEST(WattsStrogatz, ZeroRewiringIsRingLattice) {
  Rng rng(11);
  GeneratedGraph g = GenerateWattsStrogatz({50, 2, 0.0}, rng);
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  for (VertexId u = 0; u < 50; ++u) {
    EXPECT_EQ(csr.Degree(u), 4u) << "vertex " << u;
    EXPECT_TRUE(csr.HasEdge(u, (u + 1) % 50));
    EXPECT_TRUE(csr.HasEdge(u, (u + 2) % 50));
  }
}

TEST(WattsStrogatz, LowRewiringKeepsHighClustering) {
  Rng rng(12);
  GeneratedGraph g = GenerateWattsStrogatz({2000, 5, 0.05}, rng);
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  GraphStats stats = ComputeGraphStats(csr);
  // Ring lattice clustering ≈ 0.7 for k=5; light rewiring keeps it high.
  EXPECT_GT(stats.global_clustering, 0.4);
}

TEST(Rmat, RespectsScaleAndSimplicity) {
  Rng rng(13);
  RmatParams params;
  params.scale = 10;
  params.num_edges = 5000;
  GeneratedGraph g = GenerateRmat(params, rng);
  EXPECT_EQ(g.num_vertices, 1024u);
  EXPECT_EQ(g.edges.size(), 5000u);
  ExpectSimpleGraph(g);
}

TEST(Rmat, SkewedQuadrantsGiveSkewedDegrees) {
  Rng rng(14);
  RmatParams params;
  params.scale = 12;
  params.num_edges = 30000;
  GeneratedGraph g = GenerateRmat(params, rng);
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  uint32_t max_degree = 0;
  uint64_t degree_sum = 0;
  for (VertexId u = 0; u < csr.num_vertices(); ++u) {
    max_degree = std::max(max_degree, csr.Degree(u));
    degree_sum += csr.Degree(u);
  }
  double avg = static_cast<double>(degree_sum) / csr.num_vertices();
  EXPECT_GT(max_degree, 10 * avg);
}

TEST(Sbm, BlockAssignmentBalancedAndSized) {
  Rng rng(15);
  SbmParams params;
  params.num_vertices = 1000;
  params.num_blocks = 10;
  SbmGraph g = GenerateSbm(params, rng);
  ASSERT_EQ(g.block_of.size(), 1000u);
  std::vector<int> sizes(10, 0);
  for (uint32_t b : g.block_of) {
    ASSERT_LT(b, 10u);
    ++sizes[b];
  }
  for (int s : sizes) EXPECT_EQ(s, 100);
  ExpectSimpleGraph(g.graph);
}

TEST(Sbm, IntraBlockDenserThanInter) {
  Rng rng(16);
  SbmParams params;
  params.num_vertices = 2000;
  params.num_blocks = 4;
  params.p_intra = 0.05;
  params.p_inter = 0.001;
  SbmGraph g = GenerateSbm(params, rng);
  uint64_t intra = 0, inter = 0;
  for (const Edge& e : g.graph.edges) {
    (g.block_of[e.u] == g.block_of[e.v] ? intra : inter) += 1;
  }
  // Expected intra ≈ 4 * C(500,2) * 0.05 ≈ 24950; inter ≈ 6*500*500*0.001 = 1500.
  EXPECT_GT(intra, inter * 5);
}

TEST(Sbm, EdgeCountsNearExpectation) {
  Rng rng(17);
  SbmParams params;
  params.num_vertices = 1000;
  params.num_blocks = 2;
  params.p_intra = 0.02;
  params.p_inter = 0.002;
  SbmGraph g = GenerateSbm(params, rng);
  double expected_intra = 2 * (500.0 * 499 / 2) * 0.02;
  double expected_inter = 500.0 * 500 * 0.002;
  double expected = expected_intra + expected_inter;
  EXPECT_NEAR(g.graph.edges.size(), expected, 6 * std::sqrt(expected));
}

TEST(ConfigurationModel, ApproximatesDegreeSequence) {
  Rng rng(18);
  std::vector<uint32_t> degrees(500, 4);
  GeneratedGraph g = GenerateConfigurationModel({degrees}, rng);
  ExpectSimpleGraph(g);
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  uint64_t total = 0;
  for (VertexId u = 0; u < 500; ++u) {
    EXPECT_LE(csr.Degree(u), 4u);
    total += csr.Degree(u);
  }
  // Erased configuration model loses only a small fraction of stubs.
  EXPECT_GT(total, 500u * 4 * 9 / 10);
}

TEST(ConfigurationModelDeathTest, OddStubSumAborts) {
  Rng rng(19);
  std::vector<uint32_t> degrees = {1, 2};  // sum 3: unpairable
  EXPECT_DEATH(GenerateConfigurationModel({degrees}, rng), "even");
}

TEST(PowerLawDegreeSequence, RespectsBoundsAndEvenSum) {
  Rng rng(20);
  auto degrees = PowerLawDegreeSequence(10000, 2.5, 2, 100, rng);
  ASSERT_EQ(degrees.size(), 10000u);
  uint64_t sum = 0;
  for (uint32_t d : degrees) {
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 101u);  // +1 possible from even-sum fixup on degrees[0]
    sum += d;
  }
  EXPECT_EQ(sum % 2, 0u);
}

TEST(StreamOrder, NamesAreStable) {
  EXPECT_STREQ(StreamOrderName(StreamOrder::kGenerated), "generated");
  EXPECT_STREQ(StreamOrderName(StreamOrder::kRandom), "random");
  EXPECT_STREQ(StreamOrderName(StreamOrder::kSortedBySource),
               "sorted_by_source");
  EXPECT_STREQ(StreamOrderName(StreamOrder::kReversed), "reversed");
}

TEST(StreamOrder, ReorderingsPreserveMultiset) {
  Rng rng(21);
  EdgeList edges = {{0, 1}, {2, 3}, {1, 2}, {4, 0}};
  for (StreamOrder order :
       {StreamOrder::kGenerated, StreamOrder::kRandom,
        StreamOrder::kSortedBySource, StreamOrder::kReversed}) {
    EdgeList copy = edges;
    ApplyStreamOrder(order, copy, rng);
    EdgeList sorted_original = edges, sorted_copy = copy;
    std::sort(sorted_original.begin(), sorted_original.end());
    std::sort(sorted_copy.begin(), sorted_copy.end());
    EXPECT_EQ(sorted_original, sorted_copy) << StreamOrderName(order);
  }
}

TEST(StreamOrder, SortedAndReversedAreWhatTheySay) {
  Rng rng(22);
  EdgeList edges = {{3, 4}, {0, 1}, {2, 3}};
  EdgeList sorted = edges;
  ApplyStreamOrder(StreamOrder::kSortedBySource, sorted, rng);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EdgeList reversed = edges;
  ApplyStreamOrder(StreamOrder::kReversed, reversed, rng);
  EXPECT_EQ(reversed.front(), edges.back());
}

TEST(SplitPointFn, FractionOfLength) {
  EdgeList edges(100);
  EXPECT_EQ(SplitPoint(edges, 0.8), 80u);
  EXPECT_EQ(SplitPoint(edges, 0.0), 0u);
  EXPECT_EQ(SplitPoint(edges, 1.0), 100u);
}

TEST(PairSampler, UniformPairsDistinctValid) {
  Rng rng(23);
  auto pairs = SampleUniformPairs(100, 50, rng);
  ASSERT_EQ(pairs.size(), 50u);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const QueryPair& p : pairs) {
    EXPECT_NE(p.u, p.v);
    EXPECT_LT(p.u, 100u);
    EXPECT_LT(p.v, 100u);
    EXPECT_TRUE(seen.insert({p.u, p.v}).second);
  }
}

TEST(PairSamplerDeathTest, TooManyPairsAborts) {
  Rng rng(24);
  EXPECT_DEATH(SampleUniformPairs(3, 10, rng), "only");
}

TEST(PairSampler, OverlappingPairsShareANeighbor) {
  Rng rng(25);
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 3});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  auto pairs = SampleOverlappingPairs(csr, 200, rng);
  ASSERT_EQ(pairs.size(), 200u);
  for (const QueryPair& p : pairs) {
    EXPECT_GE(csr.IntersectionSize(p.u, p.v), 1u)
        << "(" << p.u << "," << p.v << ")";
  }
}

TEST(PairSamplerDeathTest, OverlappingNeedsWedges) {
  Rng rng(26);
  CsrGraph g = CsrGraph::FromEdges({{0, 1}});  // single edge: no wedges
  EXPECT_DEATH(SampleOverlappingPairs(g, 1, rng), "no wedges");
}

TEST(PairSampler, MixedPairsCombineBoth) {
  Rng rng(27);
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.05, 4});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  auto pairs = SampleMixedPairs(csr, 100, 0.5, rng);
  EXPECT_EQ(pairs.size(), 100u);
}

TEST(Workloads, AllStandardNamesGenerate) {
  for (const std::string& name : StandardWorkloadNames()) {
    GeneratedGraph g = MakeWorkload(WorkloadSpec{name, 0.02, 5});
    EXPECT_GT(g.edges.size(), 100u) << name;
    EXPECT_GT(g.num_vertices, 50u) << name;
    ExpectSimpleGraph(g);
  }
}

TEST(Workloads, DeterministicAcrossCalls) {
  GeneratedGraph a = MakeWorkload(WorkloadSpec{"rmat", 0.02, 6});
  GeneratedGraph b = MakeWorkload(WorkloadSpec{"rmat", 0.02, 6});
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Workloads, SeedChangesOutput) {
  GeneratedGraph a = MakeWorkload(WorkloadSpec{"er", 0.02, 1});
  GeneratedGraph b = MakeWorkload(WorkloadSpec{"er", 0.02, 2});
  EXPECT_NE(a.edges, b.edges);
}

TEST(WorkloadsDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeWorkload(WorkloadSpec{"nope", 1.0, 0}), "unknown workload");
}

TEST(Workloads, ScaleControlsSize) {
  GeneratedGraph small = MakeWorkload(WorkloadSpec{"ba", 0.02, 7});
  GeneratedGraph large = MakeWorkload(WorkloadSpec{"ba", 0.1, 7});
  EXPECT_LT(small.num_vertices, large.num_vertices);
}

}  // namespace
}  // namespace streamlink

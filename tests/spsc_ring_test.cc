#include "stream/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "stream/edge_batch.h"

namespace streamlink {
namespace {

TEST(SpscRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, PopFromEmptyFails) {
  SpscRing<int> ring(4);
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(SpscRing, PushUntilFullThenPopInOrder) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int value = i;
    ASSERT_TRUE(ring.TryPush(value)) << i;
  }
  int overflow = 99;
  EXPECT_FALSE(ring.TryPush(overflow));
  EXPECT_EQ(overflow, 99);  // a failed push must not consume the value
  EXPECT_EQ(ring.size_approx(), 4u);
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> ring(2);
  int expected = 0;
  for (int i = 0; i < 1000; ++i) {
    int value = i;
    ASSERT_TRUE(ring.TryPush(value));
    if (i % 2 == 1) {  // drain in pairs so indices wrap constantly
      for (int j = 0; j < 2; ++j) {
        int out = -1;
        ASSERT_TRUE(ring.TryPop(&out));
        EXPECT_EQ(out, expected++);
      }
    }
  }
  EXPECT_EQ(expected, 1000);
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  auto value = std::make_unique<int>(7);
  ASSERT_TRUE(ring.TryPush(value));
  EXPECT_EQ(value, nullptr);  // a successful push moves the payload out
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRing, CloseDrainsRemainingItems) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) {
    int value = i;
    ASSERT_TRUE(ring.TryPush(value));
  }
  ring.Close();
  EXPECT_TRUE(ring.closed());
  // The consumer protocol: pop what's there, and only a failed pop with
  // closed() set means end-of-stream.
  for (int i = 0; i < 3; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.closed());
}

TEST(SpscRing, CloseIsIdempotent) {
  SpscRing<int> ring(2);
  ring.Close();
  ring.Close();
  EXPECT_TRUE(ring.closed());
}

// Concurrent producer/consumer pass. Every value pushed must come out
// exactly once, in order, across constant wrap-around and full/empty
// transitions. Run under the tsan preset this doubles as a memory-order
// check on the release/acquire pairs.
TEST(SpscRing, ConcurrentProducerConsumer) {
  constexpr uint64_t kItems = 200000;
  SpscRing<uint64_t> ring(8);
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kItems; ++i) {
      uint64_t value = i;
      while (!ring.TryPush(value)) std::this_thread::yield();
    }
    ring.Close();
  });
  uint64_t expected = 0;
  for (;;) {
    uint64_t out = 0;
    if (ring.TryPop(&out)) {
      ASSERT_EQ(out, expected);
      ++expected;
      continue;
    }
    if (ring.closed()) {
      // Close() may have raced a final push: one more drain pass.
      while (ring.TryPop(&out)) {
        ASSERT_EQ(out, expected);
        ++expected;
      }
      break;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

// The payload type the ingest engine actually ships: buffers with hash
// lanes, moved through a tiny ring from a producer thread.
TEST(SpscRing, ConcurrentEdgeBatchBuffers) {
  constexpr uint32_t kBatches = 2000;
  SpscRing<EdgeBatchBuffer> ring(4);
  std::thread producer([&ring] {
    for (uint32_t i = 0; i < kBatches; ++i) {
      EdgeBatchBuffer buffer;
      buffer.Reserve(3, /*with_hash_u=*/false, /*with_hash_v=*/true);
      for (uint32_t j = 0; j < 3; ++j) {
        buffer.AppendHalfEdge(i, i + j, /*neighbor_hash=*/i * 3ull + j);
      }
      while (!ring.TryPush(buffer)) std::this_thread::yield();
    }
    ring.Close();
  });
  uint32_t received = 0;
  uint64_t hash_sum = 0;
  for (;;) {
    EdgeBatchBuffer buffer;
    if (ring.TryPop(&buffer)) {
      EdgeBatch view = buffer.View();
      ASSERT_EQ(view.size(), 3u);
      ASSERT_TRUE(view.has_hash_v());
      for (size_t j = 0; j < view.size(); ++j) {
        ASSERT_EQ(view[j].u, received);
        hash_sum += view.hash_v(j);
      }
      ++received;
      continue;
    }
    if (ring.closed()) {
      while (ring.TryPop(&buffer)) ++received;
      break;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(received, kBatches);
  // sum over i<kBatches, j<3 of (3i + j)
  const uint64_t n = kBatches;
  EXPECT_EQ(hash_sum, 3 * (n * (n - 1) / 2) * 3 + n * 3);
}

}  // namespace
}  // namespace streamlink

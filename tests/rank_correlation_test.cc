#include "eval/rank_correlation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace streamlink {
namespace {

TEST(MidRanksFn, SimpleRanks) {
  std::vector<double> v = {30, 10, 20};
  std::vector<double> ranks = MidRanks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(MidRanksFn, TiesShareMidrank) {
  std::vector<double> v = {5, 5, 1};
  std::vector<double> ranks = MidRanks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 2.5);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 1.0);
}

TEST(KendallTauFn, PerfectAgreementIsOne) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {10, 20, 30, 40, 50};
  EXPECT_NEAR(KendallTau(a, b), 1.0, 1e-12);
}

TEST(KendallTauFn, PerfectDisagreementIsMinusOne) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {50, 40, 30, 20, 10};
  EXPECT_NEAR(KendallTau(a, b), -1.0, 1e-12);
}

TEST(KendallTauFn, HandComputedSmallCase) {
  // a = (1,2,3), b = (1,3,2): pairs (1,2)+, (1,3)+, (2,3)-.
  // tau = (2 - 1)/3 = 1/3.
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {1, 3, 2};
  EXPECT_NEAR(KendallTau(a, b), 1.0 / 3.0, 1e-12);
}

TEST(KendallTauFn, TauBWithTies) {
  // a has a tie; tau-b applies tie correction.
  std::vector<double> a = {1, 1, 2};
  std::vector<double> b = {1, 2, 3};
  // Comparable (non-tied-in-a) pairs: (a1,a3), (a2,a3) both concordant.
  // tau-b = 2 / sqrt((3-1)(3-0)) = 2/sqrt(6).
  EXPECT_NEAR(KendallTau(a, b), 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(KendallTauFn, AllTiedIsZero) {
  std::vector<double> a = {7, 7, 7};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), 0.0);
}

TEST(KendallTauFn, IndependentVectorsNearZero) {
  Rng rng(1);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.NextDouble());
    b.push_back(rng.NextDouble());
  }
  EXPECT_NEAR(KendallTau(a, b), 0.0, 0.05);
}

TEST(KendallTauFnDeathTest, PreconditionsEnforced) {
  std::vector<double> a = {1, 2}, b = {1};
  EXPECT_DEATH(KendallTau(a, b), "equal sizes");
  std::vector<double> one = {1};
  EXPECT_DEATH(KendallTau(one, one), "at least 2");
}

TEST(SpearmanRhoFn, PerfectMonotoneIsOne) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 8, 9, 100};  // monotone but nonlinear
  EXPECT_NEAR(SpearmanRho(a, b), 1.0, 1e-12);
}

TEST(SpearmanRhoFn, ReversedIsMinusOne) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {4, 3, 2, 1};
  EXPECT_NEAR(SpearmanRho(a, b), -1.0, 1e-12);
}

TEST(SpearmanRhoFn, ConstantVectorIsZero) {
  std::vector<double> a = {5, 5, 5};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(SpearmanRho(a, b), 0.0);
}

TEST(SpearmanRhoFn, HandComputedWithTie) {
  // a = (1, 2, 2): ranks (1, 2.5, 2.5); b = (1, 2, 3): ranks (1, 2, 3).
  std::vector<double> a = {1, 2, 2};
  std::vector<double> b = {1, 2, 3};
  // cov of ranks: mean 2; a: (-1, .5, .5), b: (-1, 0, 1).
  // cov = 1 + 0 + .5 = 1.5; var_a = 1.5, var_b = 2 → 1.5/sqrt(3) ≈ 0.866.
  EXPECT_NEAR(SpearmanRho(a, b), 1.5 / std::sqrt(3.0), 1e-12);
}

TEST(SpearmanRhoFn, IndependentVectorsNearZero) {
  Rng rng(2);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.NextDouble());
    b.push_back(rng.NextDouble());
  }
  EXPECT_NEAR(SpearmanRho(a, b), 0.0, 0.05);
}

TEST(RankCorrelation, KendallAndSpearmanAgreeInSign) {
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    double x = rng.NextDouble();
    a.push_back(x);
    b.push_back(x + 0.2 * rng.NextGaussian());  // positively related
  }
  EXPECT_GT(KendallTau(a, b), 0.3);
  EXPECT_GT(SpearmanRho(a, b), 0.4);
}

}  // namespace
}  // namespace streamlink

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "stream/edge_stream.h"
#include "stream/rate_meter.h"
#include "stream/sliding_window.h"
#include "stream/stream_driver.h"

namespace streamlink {
namespace {

/// Collects every edge it sees.
class RecordingConsumer : public EdgeConsumer {
 public:
  void OnEdge(const Edge& edge) override { edges.push_back(edge); }
  EdgeList edges;
};

TEST(VectorEdgeStream, YieldsAllEdgesInOrder) {
  VectorEdgeStream s({{0, 1}, {1, 2}});
  Edge e;
  ASSERT_TRUE(s.Next(&e));
  EXPECT_EQ(e, Edge(0, 1));
  ASSERT_TRUE(s.Next(&e));
  EXPECT_EQ(e, Edge(1, 2));
  EXPECT_FALSE(s.Next(&e));
  EXPECT_EQ(s.SizeHint(), 2u);
}

TEST(VectorEdgeStream, ResetRewinds) {
  VectorEdgeStream s({{0, 1}});
  Edge e;
  ASSERT_TRUE(s.Next(&e));
  EXPECT_FALSE(s.Next(&e));
  s.Reset();
  ASSERT_TRUE(s.Next(&e));
  EXPECT_EQ(e, Edge(0, 1));
}

TEST(DedupEdgeStream, DropsDuplicatesAndSelfLoops) {
  auto inner = std::make_unique<VectorEdgeStream>(
      EdgeList{{0, 1}, {1, 0}, {2, 2}, {0, 1}, {1, 2}});
  DedupEdgeStream s(std::move(inner));
  EdgeList seen;
  Edge e;
  while (s.Next(&e)) seen.push_back(e);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], Edge(0, 1));
  EXPECT_EQ(seen[1], Edge(1, 2));
}

TEST(DedupEdgeStream, ResetClearsSeenSet) {
  auto inner =
      std::make_unique<VectorEdgeStream>(EdgeList{{0, 1}, {0, 1}});
  DedupEdgeStream s(std::move(inner));
  Edge e;
  int count = 0;
  while (s.Next(&e)) ++count;
  EXPECT_EQ(count, 1);
  s.Reset();
  count = 0;
  while (s.Next(&e)) ++count;
  EXPECT_EQ(count, 1);
}

TEST(PrefixEdgeStream, Truncates) {
  auto inner = std::make_unique<VectorEdgeStream>(
      EdgeList{{0, 1}, {1, 2}, {2, 3}});
  PrefixEdgeStream s(std::move(inner), 2);
  EXPECT_EQ(s.SizeHint(), 2u);
  Edge e;
  int count = 0;
  while (s.Next(&e)) ++count;
  EXPECT_EQ(count, 2);
  s.Reset();
  count = 0;
  while (s.Next(&e)) ++count;
  EXPECT_EQ(count, 2);
}

TEST(PrefixEdgeStream, LimitBeyondLengthIsWholeStream) {
  auto inner = std::make_unique<VectorEdgeStream>(EdgeList{{0, 1}});
  PrefixEdgeStream s(std::move(inner), 100);
  EXPECT_EQ(s.SizeHint(), 1u);
}

/// Additionally records how edges were grouped into OnEdgeBatch calls.
class BatchRecordingConsumer : public RecordingConsumer {
 public:
  void OnEdgeBatch(const Edge* batch, size_t count) override {
    batch_sizes.push_back(count);
    EdgeConsumer::OnEdgeBatch(batch, count);
  }
  std::vector<size_t> batch_sizes;
};

TEST(EdgeConsumer, DefaultOnEdgeBatchForwardsEdgeByEdge) {
  RecordingConsumer c;
  EdgeList edges = {{0, 1}, {1, 2}, {2, 3}};
  c.OnEdgeBatch(edges.data(), edges.size());
  EXPECT_EQ(c.edges, edges);
}

TEST(StreamDriver, DeliversInBatchesOfConfiguredSize) {
  EdgeList edges;
  for (VertexId i = 0; i < 10; ++i) edges.emplace_back(i, i + 1);
  VectorEdgeStream stream(edges);
  BatchRecordingConsumer c;
  StreamDriver driver;
  driver.AddConsumer(&c);
  driver.SetBatchSize(4);
  EXPECT_EQ(driver.Run(stream), 10u);
  EXPECT_EQ(c.edges, edges);
  EXPECT_EQ(c.batch_sizes, (std::vector<size_t>{4, 4, 2}));
}

TEST(StreamDriver, BatchesFlushAtCheckpointPositions) {
  // 10 edges, batch size far larger: the 0.5 checkpoint must still observe
  // exactly 5 consumed edges, with consumers flushed before the callback.
  EdgeList edges;
  for (VertexId i = 0; i < 10; ++i) edges.emplace_back(i, i + 1);
  VectorEdgeStream stream(edges);
  BatchRecordingConsumer c;
  StreamDriver driver;
  driver.AddConsumer(&c);
  driver.SetBatchSize(1000);
  std::vector<uint64_t> positions;
  std::vector<size_t> delivered_at_checkpoint;
  driver.SetCheckpoints({0.5, 1.0}, [&](uint64_t consumed, double) {
    positions.push_back(consumed);
    delivered_at_checkpoint.push_back(c.edges.size());
  });
  driver.Run(stream);
  ASSERT_EQ(positions.size(), 2u);
  EXPECT_EQ(positions[0], 5u);
  EXPECT_EQ(delivered_at_checkpoint[0], 5u);
  EXPECT_EQ(positions[1], 10u);
  EXPECT_EQ(delivered_at_checkpoint[1], 10u);
  EXPECT_EQ(c.edges, edges);
}

TEST(StreamDriverDeathTest, ZeroBatchSizeAborts) {
  StreamDriver driver;
  EXPECT_DEATH(driver.SetBatchSize(0), ">= 1");
}

TEST(StreamDriver, FeedsAllConsumers) {
  VectorEdgeStream stream({{0, 1}, {1, 2}, {2, 3}});
  RecordingConsumer a, b;
  StreamDriver driver;
  driver.AddConsumer(&a);
  driver.AddConsumer(&b);
  EXPECT_EQ(driver.Run(stream), 3u);
  EXPECT_EQ(a.edges.size(), 3u);
  EXPECT_EQ(b.edges, a.edges);
}

TEST(StreamDriver, CheckpointsFireAtFractions) {
  EdgeList edges;
  for (VertexId i = 0; i < 100; ++i) edges.emplace_back(i, i + 1);
  VectorEdgeStream stream(std::move(edges));
  StreamDriver driver;
  std::vector<uint64_t> positions;
  driver.SetCheckpoints({0.25, 0.5, 1.0},
                        [&](uint64_t consumed, double fraction) {
                          positions.push_back(consumed);
                          EXPECT_GT(fraction, 0.0);
                          EXPECT_LE(fraction, 1.0);
                        });
  driver.Run(stream);
  ASSERT_EQ(positions.size(), 3u);
  EXPECT_EQ(positions[0], 25u);
  EXPECT_EQ(positions[1], 50u);
  EXPECT_EQ(positions[2], 100u);
}

TEST(StreamDriver, FinalCheckpointFiresOnShortStream) {
  VectorEdgeStream stream({{0, 1}});
  StreamDriver driver;
  int fired = 0;
  driver.SetCheckpoints({1.0}, [&](uint64_t, double) { ++fired; });
  driver.Run(stream);
  EXPECT_EQ(fired, 1);
}

TEST(StreamDriverDeathTest, BadFractionAborts) {
  StreamDriver driver;
  EXPECT_DEATH(driver.SetCheckpoints({1.5}, [](uint64_t, double) {}),
               "out of");
  EXPECT_DEATH(driver.SetCheckpoints({0.0}, [](uint64_t, double) {}),
               "out of");
}

TEST(StreamDriverDeathTest, NullConsumerAborts) {
  StreamDriver driver;
  EXPECT_DEATH(driver.AddConsumer(nullptr), "null consumer");
}

TEST(RateMeter, LifetimeRate) {
  RateMeter m(10.0);
  m.Record(0.0, 100);
  m.Record(1.0, 100);
  m.Record(2.0, 100);
  EXPECT_NEAR(m.LifetimeRate(), 150.0, 1e-9);  // 300 events over 2 seconds
  EXPECT_EQ(m.total_events(), 300u);
}

TEST(RateMeter, WindowRateDropsOldSamples) {
  RateMeter m(1.0);
  m.Record(0.0, 1000);  // will fall out of the window
  m.Record(10.0, 10);
  m.Record(10.5, 10);
  EXPECT_NEAR(m.WindowRate(), 20.0 / 0.5, 1e-9);
}

TEST(RateMeter, NoSamplesIsZero) {
  RateMeter m(1.0);
  EXPECT_DOUBLE_EQ(m.LifetimeRate(), 0.0);
  EXPECT_DOUBLE_EQ(m.WindowRate(), 0.0);
}

TEST(RateMeterDeathTest, NonPositiveWindowAborts) {
  EXPECT_DEATH(RateMeter(0.0), "positive");
}

TEST(SlidingWindowGraph, KeepsMostRecentEdges) {
  SlidingWindowGraph w(2);
  w.Add(Edge(0, 1));
  w.Add(Edge(1, 2));
  EXPECT_EQ(w.current_edges(), 2u);
  EXPECT_EQ(w.Add(Edge(2, 3)), 1u);  // expires (0,1)
  EXPECT_FALSE(w.graph().HasEdge(0, 1));
  EXPECT_TRUE(w.graph().HasEdge(1, 2));
  EXPECT_TRUE(w.graph().HasEdge(2, 3));
}

TEST(SlidingWindowGraph, DuplicateRefreshesPosition) {
  SlidingWindowGraph w(2);
  w.Add(Edge(0, 1));
  w.Add(Edge(1, 2));
  EXPECT_EQ(w.Add(Edge(0, 1)), 0u);  // duplicate: refresh, no expiry
  EXPECT_EQ(w.Add(Edge(2, 3)), 1u);  // now (1,2) is oldest and expires
  EXPECT_TRUE(w.graph().HasEdge(0, 1));
  EXPECT_FALSE(w.graph().HasEdge(1, 2));
}

TEST(SlidingWindowGraph, IgnoresSelfLoops) {
  SlidingWindowGraph w(2);
  EXPECT_EQ(w.Add(Edge(3, 3)), 0u);
  EXPECT_EQ(w.current_edges(), 0u);
}

TEST(SlidingWindowGraph, WorksAsEdgeConsumer) {
  SlidingWindowGraph w(100);
  VectorEdgeStream stream({{0, 1}, {1, 2}});
  StreamDriver driver;
  driver.AddConsumer(&w);
  driver.Run(stream);
  EXPECT_EQ(w.current_edges(), 2u);
}

TEST(SlidingWindowGraphDeathTest, ZeroWindowAborts) {
  EXPECT_DEATH(SlidingWindowGraph(0), "at least one");
}

}  // namespace
}  // namespace streamlink

// Experiment F15 (extension): all-pairs similarity join scalability.
//
// LSH banding makes the join output-sensitive: runtime should track the
// number of near-duplicate pairs, not n². This bench plants a fixed
// number of duplicate vertices into community graphs of growing size and
// reports join time, brute-force time (quadratic verification over all
// sketch pairs), recall of the planted duplicates, and candidate volume.
// Expected shape: brute-force time grows ~n² while the banded join grows
// ~n (bucketing) + output; recall of planted duplicates stays ~100%.

#include <iostream>
#include <set>

#include "bench_common.h"
#include "core/similarity_join.h"
#include "util/random.h"
#include "util/timer.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("F15", "all-pairs similarity join: banded LSH vs brute force");
  ResultTable table({"vertices", "planted", "join_ms", "brute_ms",
                     "speedup", "pairs_found", "planted_recall"});

  const int planted = 8;
  for (double scale : {0.1, 0.2, 0.4, 0.8}) {
    GeneratedGraph g =
        MakeWorkload(WorkloadSpec{"sbm", scale * config.scale, config.seed});
    MinHashPredictor predictor(
        MinHashPredictorOptions{128, static_cast<uint64_t>(config.seed)});
    FeedStream(predictor, g.edges);

    // Plant duplicates: clones wired to an original's sampled neighbors.
    VertexId clone_base = g.num_vertices;
    for (int c = 0; c < planted; ++c) {
      VertexId original = static_cast<VertexId>(50 + 29 * c);
      for (const Edge& e : g.edges) {
        if (e.u == original) predictor.OnEdge(Edge(clone_base + c, e.v));
        if (e.v == original) predictor.OnEdge(Edge(clone_base + c, e.u));
      }
    }

    const double threshold = 0.85;
    Stopwatch join_timer;
    auto joined = AllPairsSimilarVertices(
        predictor, SimilarityJoinOptions{.threshold = threshold});
    double join_ms = join_timer.ElapsedSeconds() * 1e3;

    // Brute force: score every sketch pair.
    Stopwatch brute_timer;
    uint64_t brute_pairs = 0;
    double checksum = 0.0;
    const VertexId n = predictor.num_vertices();
    for (VertexId u = 0; u < n; ++u) {
      const MinHashSketch* su = predictor.Sketch(u);
      if (su == nullptr || su->IsEmpty()) continue;
      for (VertexId v = u + 1; v < n; ++v) {
        const MinHashSketch* sv = predictor.Sketch(v);
        if (sv == nullptr || sv->IsEmpty()) continue;
        checksum += MinHashSketch::EstimateJaccard(*su, *sv) >= threshold;
        ++brute_pairs;
      }
    }
    double brute_ms = brute_timer.ElapsedSeconds() * 1e3;
    if (checksum < -1) std::printf("impossible\n");

    // Recall of the planted duplicates.
    std::set<VertexId> found_clones;
    for (const ScoredPair& p : joined) {
      if (p.pair.u >= clone_base) found_clones.insert(p.pair.u);
      if (p.pair.v >= clone_base) found_clones.insert(p.pair.v);
    }
    table.AddRow(
        {std::to_string(n), std::to_string(planted),
         ResultTable::Cell(join_ms), ResultTable::Cell(brute_ms),
         ResultTable::Cell(join_ms > 0 ? brute_ms / join_ms : 0),
         std::to_string(joined.size()),
         ResultTable::Cell(static_cast<double>(found_clones.size()) /
                           planted)});
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, /*scale=*/0.5));
}

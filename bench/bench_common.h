#ifndef STREAMLINK_BENCH_BENCH_COMMON_H_
#define STREAMLINK_BENCH_BENCH_COMMON_H_

// Shared plumbing for the experiment binaries (bench_t1 .. bench_f9).
// Each binary reproduces one table/figure of the evaluation (see
// DESIGN.md §5): it prints the rows to stdout through TablePrinter and,
// when --out is given, also writes them as CSV for plotting.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/link_predictor.h"
#include "core/predictor_factory.h"
#include "eval/experiment.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "obs/proc_stats.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace streamlink {
namespace bench {

/// Machine-readable run report, written as `BENCH_<name>.json` in the
/// working directory (tools/bench_diff.py compares two of them). Every
/// binary gets one automatically: BenchConfig::FromFlags names it after
/// the executable and ResultTable::Emit folds in each emitted table plus
/// wall_seconds and peak_rss_kb; binaries add headline scalars (edges/sec,
/// p50/p99, overhead) with AddMetric. Rewritten on every Write so a crash
/// mid-run still leaves the last complete report.
class BenchReport {
 public:
  static BenchReport& Get() {
    static BenchReport* report = new BenchReport();
    return *report;
  }

  void SetName(const std::string& name) { name_ = name; }
  const std::string& name() const { return name_; }

  /// Adds (or overwrites) a headline scalar, e.g. "ingest_eps" or
  /// "query_p99_us". Keys ending in _eps/_qps/_per_sec/throughput are what
  /// tools/bench_diff.py treats as higher-is-better.
  void AddMetric(const std::string& key, double value) {
    for (auto& [k, v] : metrics_) {
      if (k == key) {
        v = value;
        return;
      }
    }
    metrics_.emplace_back(key, value);
  }

  void AddTable(const std::vector<std::string>& columns,
                const std::vector<std::vector<std::string>>& rows) {
    tables_.push_back({columns, rows});
  }

  /// Writes BENCH_<name>.json; SL_CHECKs on I/O failure (bench binaries
  /// treat unwritable output as a bug, like ResultTable's CSV path).
  void Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    SL_CHECK(file != nullptr) << "cannot open " << path;
    std::fprintf(file, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    std::fprintf(file, "  \"wall_seconds\": %.6f,\n",
                 clock_.ElapsedSeconds());
    std::fprintf(file, "  \"peak_rss_kb\": %llu,\n",
                 static_cast<unsigned long long>(obs::PeakRssKb()));
    std::fprintf(file, "  \"metrics\": {");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(file, "%s\n    \"%s\": %.17g", i > 0 ? "," : "",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(file, "\n  },\n  \"tables\": [");
    for (size_t t = 0; t < tables_.size(); ++t) {
      std::fprintf(file, "%s\n    {\"columns\": [", t > 0 ? "," : "");
      WriteStrings(file, tables_[t].columns);
      std::fprintf(file, "], \"rows\": [");
      for (size_t r = 0; r < tables_[t].rows.size(); ++r) {
        std::fprintf(file, "%s[", r > 0 ? ", " : "");
        WriteStrings(file, tables_[t].rows[r]);
        std::fprintf(file, "]");
      }
      std::fprintf(file, "]}");
    }
    std::fprintf(file, "\n  ]\n}\n");
    SL_CHECK(std::fclose(file) == 0) << "failed writing " << path;
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct Table {
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  BenchReport() = default;

  static void WriteStrings(std::FILE* file,
                           const std::vector<std::string>& values) {
    for (size_t i = 0; i < values.size(); ++i) {
      std::fprintf(file, "%s\"", i > 0 ? ", " : "");
      for (char c : values[i]) {
        if (c == '"' || c == '\\') std::fputc('\\', file);
        std::fputc(c, file);
      }
      std::fputc('"', file);
    }
  }

  std::string name_ = "bench";
  Stopwatch clock_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<Table> tables_;
};

/// Flags shared by all experiment binaries:
///   --scale   workload scale multiplier (1.0 = paper-size defaults)
///   --pairs   number of query pairs per accuracy measurement
///   --out     CSV output path ("" = console only)
/// plus the predictor flag set of PredictorConfigFromFlags (--seed,
/// --threads, --sketch-degrees, ...). `predictor` carries those values;
/// binaries that sweep kind/size start from it (so e.g. --threads or
/// --sketch-degrees apply across the sweep) and override the swept knobs.
struct BenchConfig {
  double scale = 1.0;
  uint64_t seed = 42;
  uint32_t pairs = 1000;
  std::string out;
  PredictorConfig predictor;

  static BenchConfig FromFlags(int argc, char** argv,
                               double default_scale = 1.0,
                               uint32_t default_pairs = 1000) {
    // Name the run report after the executable: ".../bench_f4_throughput"
    // -> BENCH_f4_throughput.json.
    if (argc > 0) {
      std::string name = argv[0];
      const size_t slash = name.find_last_of('/');
      if (slash != std::string::npos) name = name.substr(slash + 1);
      if (name.rfind("bench_", 0) == 0) name = name.substr(6);
      if (!name.empty()) BenchReport::Get().SetName(name);
    }
    FlagParser flags(argc, argv);
    std::vector<std::string> known = {"scale", "pairs", "out"};
    for (const std::string& name : PredictorFlagNames()) {
      known.push_back(name);
    }
    SL_CHECK_OK(flags.CheckUnknown(known));
    BenchConfig config;
    config.scale = flags.GetDouble("scale", default_scale);
    config.pairs =
        static_cast<uint32_t>(flags.GetInt("pairs", default_pairs));
    config.out = flags.GetString("out", "");
    PredictorConfig defaults;
    defaults.seed = 42;
    config.predictor = PredictorConfigFromFlags(flags, defaults);
    config.seed = config.predictor.seed;
    return config;
  }
};

/// Prints the experiment banner.
inline void Banner(const std::string& id, const std::string& title) {
  std::printf("=== %s: %s ===\n", id.c_str(), title.c_str());
}

/// Collects experiment rows once, then renders them to the console and
/// (optionally) a CSV file.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Formats a double with the table-wide %.4g convention.
  static std::string Cell(double v) { return TablePrinter::FormatCell(v); }

  void Emit(const BenchConfig& config) const {
    TablePrinter table(columns_);
    for (const auto& row : rows_) table.AddRow(row);
    table.Print(std::cout);
    if (!config.out.empty()) {
      CsvWriter csv(config.out);
      SL_CHECK_OK(csv.status());
      csv.WriteHeader(columns_);
      for (const auto& row : rows_) csv.AppendRow(row);
      std::printf("wrote %s\n", config.out.c_str());
    }
    BenchReport& report = BenchReport::Get();
    report.AddTable(columns_, rows_);
    report.Write();
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Builds a predictor or dies (bench binaries treat config errors as bugs).
inline std::unique_ptr<LinkPredictor> MustMakePredictor(
    const PredictorConfig& config) {
  auto p = MakePredictor(config);
  SL_CHECK(p.ok()) << p.status().ToString();
  return std::move(*p);
}

}  // namespace bench
}  // namespace streamlink

#endif  // STREAMLINK_BENCH_BENCH_COMMON_H_

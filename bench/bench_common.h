#ifndef STREAMLINK_BENCH_BENCH_COMMON_H_
#define STREAMLINK_BENCH_BENCH_COMMON_H_

// Shared plumbing for the experiment binaries (bench_t1 .. bench_f9).
// Each binary reproduces one table/figure of the evaluation (see
// DESIGN.md §5): it prints the rows to stdout through TablePrinter and,
// when --out is given, also writes them as CSV for plotting.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "core/predictor_factory.h"
#include "eval/experiment.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace streamlink {
namespace bench {

/// Flags shared by all experiment binaries:
///   --scale   workload scale multiplier (1.0 = paper-size defaults)
///   --pairs   number of query pairs per accuracy measurement
///   --out     CSV output path ("" = console only)
/// plus the predictor flag set of PredictorConfigFromFlags (--seed,
/// --threads, --sketch-degrees, ...). `predictor` carries those values;
/// binaries that sweep kind/size start from it (so e.g. --threads or
/// --sketch-degrees apply across the sweep) and override the swept knobs.
struct BenchConfig {
  double scale = 1.0;
  uint64_t seed = 42;
  uint32_t pairs = 1000;
  std::string out;
  PredictorConfig predictor;

  static BenchConfig FromFlags(int argc, char** argv,
                               double default_scale = 1.0,
                               uint32_t default_pairs = 1000) {
    FlagParser flags(argc, argv);
    std::vector<std::string> known = {"scale", "pairs", "out"};
    for (const std::string& name : PredictorFlagNames()) {
      known.push_back(name);
    }
    SL_CHECK_OK(flags.CheckUnknown(known));
    BenchConfig config;
    config.scale = flags.GetDouble("scale", default_scale);
    config.pairs =
        static_cast<uint32_t>(flags.GetInt("pairs", default_pairs));
    config.out = flags.GetString("out", "");
    PredictorConfig defaults;
    defaults.seed = 42;
    config.predictor = PredictorConfigFromFlags(flags, defaults);
    config.seed = config.predictor.seed;
    return config;
  }
};

/// Prints the experiment banner.
inline void Banner(const std::string& id, const std::string& title) {
  std::printf("=== %s: %s ===\n", id.c_str(), title.c_str());
}

/// Collects experiment rows once, then renders them to the console and
/// (optionally) a CSV file.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Formats a double with the table-wide %.4g convention.
  static std::string Cell(double v) { return TablePrinter::FormatCell(v); }

  void Emit(const BenchConfig& config) const {
    TablePrinter table(columns_);
    for (const auto& row : rows_) table.AddRow(row);
    table.Print(std::cout);
    if (!config.out.empty()) {
      CsvWriter csv(config.out);
      SL_CHECK_OK(csv.status());
      csv.WriteHeader(columns_);
      for (const auto& row : rows_) csv.AppendRow(row);
      std::printf("wrote %s\n", config.out.c_str());
    }
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Builds a predictor or dies (bench binaries treat config errors as bugs).
inline std::unique_ptr<LinkPredictor> MustMakePredictor(
    const PredictorConfig& config) {
  auto p = MakePredictor(config);
  SL_CHECK(p.ok()) << p.status().ToString();
  return std::move(*p);
}

}  // namespace bench
}  // namespace streamlink

#endif  // STREAMLINK_BENCH_BENCH_COMMON_H_

// Experiment F7: query throughput (pairs scored per second).
//
// The query-side claim: sketch queries read O(k) state per pair, while the
// exact baseline walks full neighborhoods — O(min degree) with hashing.
// Expected shape: sketch query rate is flat across graph density; exact
// degrades as degrees grow, losing decisively on hub-heavy pairs.

#include <iostream>

#include "bench_common.h"
#include "util/random.h"
#include "util/timer.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("F7", "query throughput (scored pairs/sec)");
  ResultTable table({"workload", "predictor", "k", "pairs", "queries_per_sec",
                     "ns_per_query"});

  const uint32_t num_queries = static_cast<uint32_t>(100000 * config.scale);

  for (const std::string& workload : {std::string("ba"), std::string("ws")}) {
    GeneratedGraph g =
        MakeWorkload(WorkloadSpec{workload, config.scale, config.seed});
    CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
    Rng rng(config.seed + 5);
    // Overlapping pairs hit the expensive path (hubs show up often).
    auto pairs = SampleOverlappingPairs(
        csr, std::min<uint32_t>(num_queries, 20000), rng);

    struct Variant {
      std::string kind;
      uint32_t k;
    };
    for (const Variant& v :
         {Variant{"exact", 0}, Variant{"minhash", 16}, Variant{"minhash", 64},
          Variant{"minhash", 256}, Variant{"bottomk", 64},
          Variant{"vertex_biased", 64}}) {
      PredictorConfig pc = config.predictor;
      pc.kind = v.kind;
      pc.sketch_size = v.k == 0 ? 64 : v.k;
      auto predictor = MustMakePredictor(pc);
      FeedStream(*predictor, g.edges);

      // Score every pair repeatedly until enough work accumulated.
      Stopwatch sw;
      uint64_t scored = 0;
      double checksum = 0.0;
      while (scored < num_queries) {
        for (const QueryPair& qp : pairs) {
          checksum += predictor->EstimateOverlap(qp.u, qp.v).jaccard;
          if (++scored >= num_queries) break;
        }
      }
      double rate = sw.Rate(scored);
      // Prevent the optimizer from discarding the queries.
      if (checksum < -1.0) std::printf("impossible\n");
      table.AddRow({workload, v.kind,
                    v.kind == "exact" ? "-" : std::to_string(v.k),
                    std::to_string(scored), ResultTable::Cell(rate),
                    ResultTable::Cell(rate > 0 ? 1e9 / rate : 0)});
      // Headline for BENCH json / bench_diff: the canonical sweep point.
      if (v.kind == "minhash" && v.k == 64) {
        BenchReport::Get().AddMetric("minhash_k64_queries_per_sec", rate);
      }
    }
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, /*scale=*/0.5));
}

// Micro-benchmarks (google-benchmark): the primitive operations whose
// costs the experiment binaries aggregate — hashing, sketch updates and
// estimates, predictor edge ingestion and queries, generators.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/bottomk_predictor.h"
#include "core/exact_predictor.h"
#include "core/minhash_predictor.h"
#include "core/vertex_biased_predictor.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/rmat.h"
#include "sketch/bbit_minhash.h"
#include "sketch/bottomk.h"
#include "sketch/count_sketch.h"
#include "sketch/hyperloglog.h"
#include "sketch/icws.h"
#include "sketch/minhash.h"
#include "sketch/oph.h"
#include "sketch/quantile.h"
#include "sketch/space_saving.h"
#include "sketch/weighted_sampler.h"
#include "util/hashing.h"
#include "util/random.h"

namespace streamlink {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 0x1234;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_HashU64(benchmark::State& state) {
  uint64_t x = 0x1234;
  for (auto _ : state) {
    x = HashU64(x, 99);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_HashU64);

void BM_TabulationHash(benchmark::State& state) {
  TabulationHash h(7);
  uint64_t x = 0x1234;
  for (auto _ : state) {
    x = h(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_TabulationHash);

void BM_MinHashUpdate(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  HashFamily family(1, k);
  MinHashSketch sketch(k);
  uint64_t item = 0;
  for (auto _ : state) {
    sketch.Update(item++, family);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinHashUpdate)->Arg(16)->Arg(64)->Arg(256);

void BM_MinHashEstimate(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  HashFamily family(1, k);
  MinHashSketch a(k), b(k);
  for (uint64_t i = 0; i < 100; ++i) {
    a.Update(i, family);
    b.Update(i + 50, family);
  }
  for (auto _ : state) {
    double j = MinHashSketch::EstimateJaccard(a, b);
    benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_MinHashEstimate)->Arg(16)->Arg(64)->Arg(256);

void BM_BottomKUpdate(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  BottomKSketch sketch(k);
  uint64_t item = 0;
  for (auto _ : state) {
    sketch.Update(HashU64(item, 5), item);
    ++item;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BottomKUpdate)->Arg(16)->Arg(64)->Arg(256);

void BM_BottomKPairEstimate(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  BottomKSketch a(k), b(k);
  for (uint64_t i = 0; i < 1000; ++i) {
    a.Update(HashU64(i, 5), i);
    b.Update(HashU64(i + 500, 5), i + 500);
  }
  for (auto _ : state) {
    auto est = BottomKSketch::EstimatePair(a, b);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_BottomKPairEstimate)->Arg(64)->Arg(256);

void BM_OphUpdate(benchmark::State& state) {
  OphSketch sketch(static_cast<uint32_t>(state.range(0)), 7);
  uint64_t item = 0;
  for (auto _ : state) {
    sketch.Update(item++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OphUpdate)->Arg(64)->Arg(256);

void BM_BBitUpdate(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  HashFamily family(3, k);
  BBitMinHash sketch(k, 2);
  uint64_t item = 0;
  for (auto _ : state) {
    sketch.Update(item++, family);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BBitUpdate)->Arg(64)->Arg(256);

void BM_WeightedSamplerOffer(benchmark::State& state) {
  WeightedBottomKSampler sampler(static_cast<uint32_t>(state.range(0)));
  uint64_t item = 0;
  for (auto _ : state) {
    sampler.Offer(item, HashToExp(HashU64(item, 9)), 1.0);
    ++item;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeightedSamplerOffer)->Arg(32)->Arg(128);

void BM_SpaceSavingOffer(benchmark::State& state) {
  SpaceSaving sketch(static_cast<uint32_t>(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    sketch.Offer(rng.NextBounded(100000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingOffer)->Arg(64)->Arg(1024);

void BM_IcwsUpdate(benchmark::State& state) {
  IcwsSketch sketch(static_cast<uint32_t>(state.range(0)), 8);
  uint64_t item = 0;
  for (auto _ : state) {
    sketch.Update(item, 1.0 + (item % 7));
    ++item;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IcwsUpdate)->Arg(16)->Arg(64);

void BM_QuantileInsert(benchmark::State& state) {
  QuantileSketch sketch(0.01);
  Rng rng(5);
  for (auto _ : state) {
    sketch.Insert(rng.NextDouble());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantileInsert);

void BM_CountSketchUpdate(benchmark::State& state) {
  CountSketch sketch(5, 1024, 6);
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Update(key++ % 10000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate);

void BM_HllUpdate(benchmark::State& state) {
  HyperLogLog h(12);
  uint64_t x = 1;
  for (auto _ : state) {
    h.Update(x = Mix64(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HllUpdate);

/// One full predictor edge-ingest on a pre-generated BA stream.
template <typename PredictorT>
void IngestBenchmark(benchmark::State& state, uint32_t k) {
  Rng rng(1);
  BarabasiAlbertParams params;
  params.num_vertices = 20000;
  params.edges_per_vertex = 8;
  GeneratedGraph g = GenerateBarabasiAlbert(params, rng);
  for (auto _ : state) {
    state.PauseTiming();
    PredictorT predictor = [&] {
      if constexpr (std::is_same_v<PredictorT, MinHashPredictor>) {
        return MinHashPredictor(MinHashPredictorOptions{k, 1});
      } else if constexpr (std::is_same_v<PredictorT, BottomKPredictor>) {
        BottomKPredictorOptions options;
        options.k = k;
        return BottomKPredictor(options);
      } else {
        VertexBiasedPredictorOptions options;
        options.num_hashes = k / 2;
        options.num_weighted_samples = k - k / 2;
        return VertexBiasedPredictor(options);
      }
    }();
    state.ResumeTiming();
    for (const Edge& e : g.edges) predictor.OnEdge(e);
    benchmark::DoNotOptimize(predictor.edges_processed());
  }
  state.SetItemsProcessed(state.iterations() * g.edges.size());
}

void BM_MinHashPredictorIngest(benchmark::State& state) {
  IngestBenchmark<MinHashPredictor>(state,
                                    static_cast<uint32_t>(state.range(0)));
}
BENCHMARK(BM_MinHashPredictorIngest)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

void BM_BottomKPredictorIngest(benchmark::State& state) {
  IngestBenchmark<BottomKPredictor>(state,
                                    static_cast<uint32_t>(state.range(0)));
}
BENCHMARK(BM_BottomKPredictorIngest)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

void BM_VertexBiasedPredictorIngest(benchmark::State& state) {
  IngestBenchmark<VertexBiasedPredictor>(
      state, static_cast<uint32_t>(state.range(0)));
}
BENCHMARK(BM_VertexBiasedPredictorIngest)->Arg(64)->Unit(
    benchmark::kMillisecond);

void BM_ExactPredictorIngest(benchmark::State& state) {
  Rng rng(1);
  BarabasiAlbertParams params;
  params.num_vertices = 20000;
  params.edges_per_vertex = 8;
  GeneratedGraph g = GenerateBarabasiAlbert(params, rng);
  for (auto _ : state) {
    state.PauseTiming();
    ExactPredictor predictor;
    state.ResumeTiming();
    for (const Edge& e : g.edges) predictor.OnEdge(e);
    benchmark::DoNotOptimize(predictor.edges_processed());
  }
  state.SetItemsProcessed(state.iterations() * g.edges.size());
}
BENCHMARK(BM_ExactPredictorIngest)->Unit(benchmark::kMillisecond);

void BM_MinHashPredictorQuery(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  BarabasiAlbertParams params;
  params.num_vertices = 20000;
  params.edges_per_vertex = 8;
  GeneratedGraph g = GenerateBarabasiAlbert(params, rng);
  MinHashPredictor predictor(MinHashPredictorOptions{k, 1});
  for (const Edge& e : g.edges) predictor.OnEdge(e);
  VertexId u = 0;
  for (auto _ : state) {
    auto est = predictor.EstimateOverlap(u % 20000, (u * 7 + 1) % 20000);
    benchmark::DoNotOptimize(est);
    ++u;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinHashPredictorQuery)->Arg(16)->Arg(64)->Arg(256);

void BM_GenerateErdosRenyi(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(7);
    GeneratedGraph g = GenerateErdosRenyi({10000, 80000}, rng);
    benchmark::DoNotOptimize(g.edges.size());
  }
  state.SetItemsProcessed(state.iterations() * 80000);
}
BENCHMARK(BM_GenerateErdosRenyi)->Unit(benchmark::kMillisecond);

void BM_GenerateBarabasiAlbert(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(7);
    GeneratedGraph g = GenerateBarabasiAlbert({10000, 8}, rng);
    benchmark::DoNotOptimize(g.edges.size());
  }
  state.SetItemsProcessed(state.iterations() * 80000);
}
BENCHMARK(BM_GenerateBarabasiAlbert)->Unit(benchmark::kMillisecond);

void BM_GenerateRmat(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(7);
    RmatParams params;
    params.scale = 14;
    params.num_edges = 80000;
    GeneratedGraph g = GenerateRmat(params, rng);
    benchmark::DoNotOptimize(g.edges.size());
  }
  state.SetItemsProcessed(state.iterations() * 80000);
}
BENCHMARK(BM_GenerateRmat)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace streamlink

BENCHMARK_MAIN();

// Experiment F6: end-task link-prediction quality.
//
// Temporal 80/20 split: predictors observe the stream prefix, then rank
// held-out future edges against sampled non-edges. Reports AUC and
// precision@100 per (workload, predictor, measure). Expected shape:
// sketch AUC approaches exact AUC as k grows; relative ordering of
// measures (AA ≥ JC ≥ CN on most graphs) is preserved by the sketches.

#include <iostream>

#include "bench_common.h"
#include "core/exact_predictor.h"
#include "eval/metrics.h"
#include "eval/temporal_split.h"
#include "gen/stream_order.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("F6", "link-prediction AUC / precision@100 (temporal split)");
  ResultTable table({"workload", "predictor", "k", "measure", "auc",
                     "precision_at_100", "positives"});

  const std::vector<LinkMeasure> measures = {LinkMeasure::kJaccard,
                                             LinkMeasure::kCommonNeighbors,
                                             LinkMeasure::kAdamicAdar};

  for (const std::string& workload :
       {std::string("ba"), std::string("ws"), std::string("sbm")}) {
    GeneratedGraph g =
        MakeWorkload(WorkloadSpec{workload, config.scale, config.seed});
    // Random edge holdout (the standard protocol): a strictly temporal
    // order like Barabási-Albert's would leave no predictable positives,
    // since every future edge touches a vertex unseen at train time.
    Rng order_rng(config.seed + 1);
    ApplyStreamOrder(StreamOrder::kRandom, g.edges, order_rng);
    TrainTestSplit split = MakeTemporalSplit(g.edges, 0.8);
    Rng rng(config.seed + 3);
    LabeledPairs labeled = MakeLabeledPairs(split, 1.0, rng);
    if (split.test_positives.empty()) {
      std::printf("  (skipping %s: no predictable positives)\n",
                  workload.c_str());
      continue;
    }

    struct Variant {
      std::string kind;
      uint32_t k;
    };
    for (const Variant& v :
         {Variant{"exact", 0}, Variant{"minhash", 32},
          Variant{"minhash", 128}, Variant{"bottomk", 128},
          Variant{"vertex_biased", 128}}) {
      PredictorConfig pc = config.predictor;
      pc.kind = v.kind;
      pc.sketch_size = v.k == 0 ? 64 : v.k;
      auto predictor = MustMakePredictor(pc);
      FeedStream(*predictor, split.train);

      for (LinkMeasure measure : measures) {
        std::vector<LabeledScore> scored;
        scored.reserve(labeled.pairs.size());
        for (size_t i = 0; i < labeled.pairs.size(); ++i) {
          scored.push_back(LabeledScore{
              predictor->Score(measure, labeled.pairs[i].u,
                               labeled.pairs[i].v),
              labeled.labels[i]});
        }
        double auc = ComputeAuc(scored);
        double p100 = PrecisionAtK(scored, 100);
        table.AddRow({workload, v.kind,
                      v.kind == "exact" ? "-" : std::to_string(v.k),
                      LinkMeasureName(measure), ResultTable::Cell(auc),
                      ResultTable::Cell(p100),
                      std::to_string(split.test_positives.size())});
      }
    }
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, /*scale=*/0.4));
}

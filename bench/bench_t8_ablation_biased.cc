// Experiment T8: ablation — vertex-biased vs uniform Adamic-Adar sampling.
//
// At an equal total space budget, compares the AA estimation error of
// (a) MinHashPredictor (uniform arg-min intersection samples) and
// (b) VertexBiasedPredictor (weight-biased coordinated samples).
// Expected shape: on skewed graphs (rmat, plconfig) the biased sampler
// wins on AA; on near-regular graphs (er) the two are comparable.

#include <iostream>

#include "bench_common.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("T8", "AA ablation: vertex-biased vs uniform sampling");
  ResultTable table({"workload", "k_total", "uniform_aa_mre",
                     "biased_aa_mre", "uniform_aa_p90", "biased_aa_p90",
                     "winner"});

  for (const std::string& workload :
       {std::string("rmat"), std::string("plconfig"), std::string("er")}) {
    GeneratedGraph g =
        MakeWorkload(WorkloadSpec{workload, config.scale, config.seed});
    CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
    Rng rng(config.seed + 11);
    auto pairs = SampleOverlappingPairs(csr, config.pairs, rng);

    for (uint32_t k : {32u, 64u, 128u, 256u}) {
      PredictorConfig uniform = config.predictor;
      uniform.kind = "minhash";
      uniform.sketch_size = k;
      AccuracyReport uniform_report = MeasureAccuracy(g, uniform, pairs);

      PredictorConfig biased = config.predictor;
      biased.kind = "vertex_biased";
      biased.sketch_size = k;
      AccuracyReport biased_report = MeasureAccuracy(g, biased, pairs);

      double u_mre = uniform_report.adamic_adar.MeanRelativeError();
      double b_mre = biased_report.adamic_adar.MeanRelativeError();
      table.AddRow(
          {workload, std::to_string(k), ResultTable::Cell(u_mre),
           ResultTable::Cell(b_mre),
           ResultTable::Cell(
               uniform_report.adamic_adar.RelativeErrorQuantile(0.9)),
           ResultTable::Cell(
               biased_report.adamic_adar.RelativeErrorQuantile(0.9)),
           b_mre < u_mre ? "biased" : "uniform"});
    }
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(streamlink::bench::BenchConfig::FromFlags(
      argc, argv, /*scale=*/0.2, /*pairs=*/600));
}

// Experiment F4: stream-update throughput.
//
// Edges/second ingested by each predictor as sketch size k varies, against
// the exact adjacency baseline. Expected shape: sketch throughput falls
// roughly as 1/k (O(k) work per edge) and is flat in stream length; the
// exact baseline pays hash-set maintenance and allocation churn.

#include <iostream>

#include "bench_common.h"
#include "util/timer.h"

namespace streamlink {
namespace bench {
namespace {

double MeasureThroughput(LinkPredictor& predictor, const EdgeList& edges) {
  Stopwatch sw;
  FeedStream(predictor, edges);
  return sw.Rate(edges.size());
}

int Run(const BenchConfig& config) {
  Banner("F4", "update throughput (edges/sec) vs sketch size");
  ResultTable table(
      {"workload", "predictor", "k", "edges", "edges_per_sec", "mbytes"});

  for (const std::string& workload : {std::string("ba"), std::string("rmat")}) {
    GeneratedGraph g =
        MakeWorkload(WorkloadSpec{workload, config.scale, config.seed});

    // Exact baseline first.
    {
      auto exact = MustMakePredictor({.kind = "exact"});
      double rate = MeasureThroughput(*exact, g.edges);
      table.AddRow({workload, "exact", "-", std::to_string(g.edges.size()),
                    ResultTable::Cell(rate),
                    ResultTable::Cell(exact->MemoryBytes() / 1e6)});
    }
    for (const std::string& kind :
         {std::string("minhash"), std::string("bottomk"),
          std::string("vertex_biased")}) {
      for (uint32_t k : {16u, 64u, 256u}) {
        PredictorConfig pc = config.predictor;
        pc.kind = kind;
        pc.sketch_size = k;
        auto predictor = MustMakePredictor(pc);
        double rate = MeasureThroughput(*predictor, g.edges);
        table.AddRow({workload, kind, std::to_string(k),
                      std::to_string(g.edges.size()),
                      ResultTable::Cell(rate),
                      ResultTable::Cell(predictor->MemoryBytes() / 1e6)});
        // Headline for BENCH json / bench_diff: the canonical sweep point.
        if (workload == "ba" && kind == "minhash" && k == 64) {
          BenchReport::Get().AddMetric("minhash_k64_eps", rate);
        }
      }
    }
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, /*scale=*/1.0));
}

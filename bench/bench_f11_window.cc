// Experiment F11 (extension): sliding-window tracking under drift.
//
// A community-drift stream: three phases, each an SBM with a *rotated*
// block assignment, concatenated. The insert-only predictor blurs all
// phases together; the windowed predictor (window = one phase) tracks the
// current phase. Ground truth is the exact sliding-window graph. Expected
// shape: after each phase change the insert-only error grows phase over
// phase while the windowed error returns to its steady level.

#include <iostream>

#include "bench_common.h"
#include "core/exact_predictor.h"
#include "core/windowed_predictor.h"
#include "gen/drifting.h"
#include "graph/exact_measures.h"
#include "stream/sliding_window.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("F11", "sliding-window predictor vs insert-only under drift");
  ResultTable table({"phase", "progress", "windowed_jc_mae",
                     "insert_only_jc_mae", "window_edges"});

  // Three phases of equal length over the same vertex set with shifted
  // community assignments (gen/drifting.h).
  Rng rng(config.seed);
  DriftingStreamParams params;
  params.num_vertices =
      static_cast<VertexId>(2000 * config.scale) + 500;
  params.num_phases = 3;
  DriftingStream drift = GenerateDriftingStream(params, rng);

  std::vector<EdgeList> phases;
  for (uint32_t p = 0; p < params.num_phases; ++p) {
    size_t begin = drift.phase_boundaries[p];
    size_t end = p + 1 < params.num_phases ? drift.phase_boundaries[p + 1]
                                           : drift.graph.edges.size();
    phases.emplace_back(drift.graph.edges.begin() + begin,
                        drift.graph.edges.begin() + end);
  }
  const uint64_t phase_edges = phases[0].size();
  const uint64_t window = phase_edges;

  WindowedPredictorOptions window_options;
  window_options.num_hashes = 128;
  window_options.window_edges = window;
  window_options.num_buckets = 8;
  window_options.seed = config.seed;
  WindowedMinHashPredictor windowed(window_options);

  auto insert_only = MustMakePredictor(
      {.kind = "minhash", .sketch_size = 128, .seed = config.seed});
  SlidingWindowGraph exact_window(window);

  Rng pair_rng(config.seed + 29);
  auto measure = [&](int phase, double progress) {
    double windowed_error = 0.0, insert_error = 0.0;
    int count = 0;
    for (uint32_t i = 0; i < config.pairs; ++i) {
      VertexId u =
          static_cast<VertexId>(pair_rng.NextBounded(params.num_vertices));
      VertexId v =
          static_cast<VertexId>(pair_rng.NextBounded(params.num_vertices));
      if (u == v) continue;
      double truth = ComputeOverlap(exact_window.graph(), u, v).Jaccard();
      windowed_error +=
          std::abs(windowed.EstimateOverlap(u, v).jaccard - truth);
      insert_error +=
          std::abs(insert_only->EstimateOverlap(u, v).jaccard - truth);
      ++count;
    }
    table.AddRow({std::to_string(phase), ResultTable::Cell(progress),
                  ResultTable::Cell(windowed_error / count),
                  ResultTable::Cell(insert_error / count),
                  std::to_string(window)});
  };

  for (int phase = 0; phase < 3; ++phase) {
    uint64_t consumed = 0;
    for (const Edge& e : phases[phase]) {
      windowed.OnEdge(e);
      insert_only->OnEdge(e);
      exact_window.Add(e);
      ++consumed;
      if (consumed == phase_edges / 2) measure(phase, 0.5);
    }
    measure(phase, 1.0);
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(streamlink::bench::BenchConfig::FromFlags(
      argc, argv, /*scale=*/0.5, /*pairs=*/300));
}

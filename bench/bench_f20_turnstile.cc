// F20: turnstile ingest — edge deletions end-to-end (docs/turnstile.md).
// Generates a delete-heavy churn stream (~35% of events are deletes of a
// uniformly random live edge), then measures event throughput of the tcm
// predictor through each engine mode:
//
//   1. sequential replay (threads=1) — the reference path;
//   2. ordered vertex-sharded ingest (threads=2, op-tagged half-edge
//      batches) — must stay bit-identical to sequential;
//   3. relaxed replicas (threads=2, whole-event partitions folded at
//      end-of-stream) — lossless for tcm's additive cells.
//
// Every run re-verifies the correctness claims before timing anything:
// the turnstile differential oracle (exact-replay comparison under the
// Markov tolerance) must pass, and the ordered/relaxed builds must answer
// a pair sample identically to the sequential build. Throughput metrics
// (events/sec, *_eps) are best-of-3 and diff-gated by
// check-bench-turnstile at a wide tripwire threshold — a 2-core shared
// box swings with co-tenant load.

#include <memory>

#include "bench_common.h"
#include "gen/churn.h"
#include "stream/op_stream.h"
#include "stream/parallel_ingest.h"
#include "util/timer.h"
#include "verify/differential.h"

namespace streamlink {
namespace bench {
namespace {

struct ModeResult {
  std::unique_ptr<LinkPredictor> predictor;
  double best_eps = 0.0;
  double best_seconds = 0.0;
};

ModeResult RunMode(const PredictorConfig& config, IngestOrdering ordering,
                   uint32_t threads, const TurnstileWorkload& w) {
  ModeResult result;
  PredictorConfig run_config = config;
  run_config.threads = threads;
  for (int round = 0; round < 3; ++round) {
    VectorOpStream stream(w.events);
    Stopwatch clock;
    auto built = IngestEngineBuilder(run_config).Ordering(ordering).Ingest(
        stream);
    const double seconds = clock.ElapsedSeconds();
    SL_CHECK(built.ok()) << built.status().ToString();
    const double eps =
        seconds > 0 ? static_cast<double>(w.events.size()) / seconds : 0.0;
    if (eps > result.best_eps) {
      result.best_eps = eps;
      result.best_seconds = seconds;
    }
    result.predictor = std::move(*built);
  }
  return result;
}

void ExpectIdentical(const LinkPredictor& a, const LinkPredictor& b,
                     VertexId num_vertices, const char* mode) {
  const VertexId stride = num_vertices > 512 ? num_vertices / 256 : 1;
  for (VertexId u = 0; u < num_vertices; u += stride) {
    const VertexId v = (u + stride + 1) % num_vertices;
    OverlapEstimate ea = a.EstimateOverlap(u, v);
    OverlapEstimate eb = b.EstimateOverlap(u, v);
    SL_CHECK(ea.jaccard == eb.jaccard && ea.intersection == eb.intersection)
        << mode << " diverged from sequential at (" << u << "," << v << ")";
  }
}

void Run(const BenchConfig& config) {
  Banner("F20", "turnstile ingest: delete-heavy churn through every mode");

  ChurnSpec spec;
  spec.base_workload = "ba";
  spec.scale = config.scale;
  spec.seed = config.seed;
  spec.delete_fraction = 0.35;
  const TurnstileWorkload w = MakeChurnWorkload(spec);
  const double realized = static_cast<double>(w.deletes) /
                          static_cast<double>(w.events.size());
  std::printf("%s: %zu events (%llu inserts, %llu deletes, %.1f%% deletes), "
              "%llu net edges, %u vertices\n\n",
              w.name.c_str(), w.events.size(),
              static_cast<unsigned long long>(w.inserts),
              static_cast<unsigned long long>(w.deletes), 100.0 * realized,
              static_cast<unsigned long long>(w.net_edges.size()),
              w.num_vertices);
  SL_CHECK(realized >= 0.30) << "churn generator missed the delete target";

  // Correctness first: the differential oracle on a delete-heavy seeded
  // workload (CI-sized — the claim is statistical, not throughput-bound).
  TurnstileOracleOptions oracle;
  oracle.seed = config.seed;
  auto oracle_report = RunTurnstileOracle(oracle);
  SL_CHECK(oracle_report.ok()) << oracle_report.status().ToString();
  std::printf("%s\n", FormatReport(*oracle_report).c_str());
  SL_CHECK(oracle_report->all_passed)
      << "turnstile differential oracle failed";

  PredictorConfig predictor_config = config.predictor;
  predictor_config.kind = "tcm";
  predictor_config.sketch_size = 64;

  ResultTable table(
      {"mode", "threads", "events", "deletes", "best_s", "events_per_s"});
  auto add_row = [&](const char* mode, uint32_t threads,
                     const ModeResult& r) {
    table.AddRow({mode, std::to_string(threads),
                  std::to_string(w.events.size()),
                  std::to_string(w.deletes), ResultTable::Cell(r.best_seconds),
                  ResultTable::Cell(r.best_eps)});
  };

  ModeResult sequential =
      RunMode(predictor_config, IngestOrdering::kOrdered, 1, w);
  add_row("sequential", 1, sequential);

  ModeResult ordered =
      RunMode(predictor_config, IngestOrdering::kOrdered, 2, w);
  ExpectIdentical(*sequential.predictor, *ordered.predictor, w.num_vertices,
                  "ordered");
  add_row("ordered", 2, ordered);

  ModeResult relaxed =
      RunMode(predictor_config, IngestOrdering::kRelaxed, 2, w);
  ExpectIdentical(*sequential.predictor, *relaxed.predictor, w.num_vertices,
                  "relaxed");
  add_row("relaxed", 2, relaxed);

  BenchReport& report = BenchReport::Get();
  report.AddMetric("turnstile_seq_eps", sequential.best_eps);
  report.AddMetric("turnstile_ordered2_eps", ordered.best_eps);
  report.AddMetric("turnstile_relaxed2_eps", relaxed.best_eps);
  // Informational: workload shape, so a baseline diff shows when the
  // stream itself changed rather than the code under it.
  report.AddMetric("delete_fraction", realized);
  report.AddMetric("stream_events", static_cast<double>(w.events.size()));
  table.Emit(config);
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, 1.0, 256));
  return 0;
}

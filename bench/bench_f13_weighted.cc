// Experiment F13 (extension): weighted link prediction via ICWS.
//
// Streams a weighted graph (hash-derived heavy-tailed edge weights over a
// clustered topology) into the ICWS predictor and measures generalized-
// Jaccard accuracy vs sketch size, against the exact weighted baseline.
// Expected shape: the matched-slot estimator concentrates as 1/sqrt(k)
// exactly like the unweighted MinHash (Ioffe's theorem gives the same
// Bernoulli structure), and strength (weighted degree) bookkeeping makes
// the Σmin estimate follow.

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/weighted_predictor.h"
#include "graph/weighted_graph.h"
#include "util/hashing.h"
#include "util/random.h"
#include "util/timer.h"

namespace streamlink {
namespace bench {
namespace {

double EdgeWeightOf(const Edge& e, uint64_t seed) {
  Edge c = e.Canonical();
  uint64_t key = (static_cast<uint64_t>(c.u) << 32) | c.v;
  // Heavy-tailed: exp of a uniform spread.
  return std::exp(3.0 * HashToUnit(HashU64(key, seed)));
}

int Run(const BenchConfig& config) {
  Banner("F13", "weighted generalized-Jaccard estimation (ICWS)");
  ResultTable table({"k", "gen_jaccard_mae", "min_sum_mre", "edges_per_sec",
                     "bytes_per_vertex"});

  GeneratedGraph g =
      MakeWorkload(WorkloadSpec{"ws", config.scale, config.seed});
  WeightedAdjacencyGraph exact;
  for (const Edge& e : g.edges) {
    exact.AddEdge(e.u, e.v, EdgeWeightOf(e, config.seed));
  }
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(config.seed + 37);
  auto pairs = SampleOverlappingPairs(csr, config.pairs, rng);

  for (uint32_t k : {16u, 32u, 64u, 128u, 256u}) {
    WeightedPredictorOptions options;
    options.num_slots = k;
    options.seed = config.seed;
    WeightedJaccardPredictor predictor(options);
    Stopwatch sw;
    for (const Edge& e : g.edges) {
      predictor.OnWeightedEdge(e.u, e.v, EdgeWeightOf(e, config.seed));
    }
    double rate = sw.Rate(g.edges.size());

    double jaccard_error = 0.0, min_rel_error = 0.0;
    int min_count = 0;
    for (const QueryPair& p : pairs) {
      WeightedOverlap truth = exact.ComputeOverlap(p.u, p.v);
      auto est = predictor.Estimate(p.u, p.v);
      jaccard_error +=
          std::abs(est.generalized_jaccard - truth.GeneralizedJaccard());
      if (truth.min_sum > 0) {
        min_rel_error += std::abs(est.min_sum - truth.min_sum) / truth.min_sum;
        ++min_count;
      }
    }
    double per_vertex =
        static_cast<double>(predictor.MemoryBytes()) / predictor.num_vertices();
    table.AddRow({std::to_string(k),
                  ResultTable::Cell(jaccard_error / pairs.size()),
                  ResultTable::Cell(min_count ? min_rel_error / min_count : 0),
                  ResultTable::Cell(rate), ResultTable::Cell(per_vertex)});
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(streamlink::bench::BenchConfig::FromFlags(
      argc, argv, /*scale=*/0.2, /*pairs=*/500));
}

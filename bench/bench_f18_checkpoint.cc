// F18: checkpoint/restore cost and kill-and-resume equivalence. Part 1
// sweeps the checkpoint cadence and reports what periodic crash-safe
// snapshots cost a live build (wall-clock overhead vs a no-checkpoint
// baseline, snapshot bytes, checkpoints taken). Part 2 simulates a crash
// at ~50% of the stream, resumes from the newest checkpoint, and reports
// restore + resume time plus the acceptance check: the resumed build's
// snapshot is byte-identical to the uninterrupted build's.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "bench_common.h"
#include "gen/workloads.h"
#include "persist/checkpoint.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"

namespace streamlink {
namespace bench {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

uint64_t DirSnapshotBytes(const CheckpointManager& manager) {
  uint64_t total = 0;
  for (const CheckpointEntry& entry : manager.entries()) {
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(
        manager.PathFor(entry.stream_edges), ec);
    if (!ec) total += size;
  }
  return total;
}

void Run(const BenchConfig& config) {
  Banner("F18", "checkpoint cost and crash-resume equivalence");

  GeneratedGraph g =
      MakeWorkload(WorkloadSpec{"rmat", config.scale, config.seed});
  std::printf("stream: %zu edges, %u vertices\n", g.edges.size(),
              g.num_vertices);

  PredictorConfig predictor_config = config.predictor;
  predictor_config.sketch_size = 128;

  const std::string base_dir =
      (std::filesystem::temp_directory_path() / "streamlink_f18").string();
  std::filesystem::remove_all(base_dir);

  // No-checkpoint baseline build.
  double baseline_seconds;
  {
    VectorEdgeStream stream(g.edges);
    Stopwatch timer;
    SL_CHECK_OK(IngestEngineBuilder(predictor_config).Ingest(stream).status());
    baseline_seconds = timer.ElapsedSeconds();
  }
  std::printf("baseline build (no checkpoints): %.3fs\n\n", baseline_seconds);

  // Part 1: cadence sweep.
  ResultTable sweep({"cadence_edges", "checkpoints", "snapshot_mb",
                     "build_seconds", "overhead", "ckpt_ms_each"});
  for (uint64_t divisor : {4u, 10u, 20u}) {
    const uint64_t cadence =
        std::max<uint64_t>(1, g.edges.size() / divisor);
    const std::string dir = base_dir + "/sweep_" + std::to_string(divisor);
    auto manager =
        CheckpointManager::Open(CheckpointOptions{dir, /*keep=*/3});
    SL_CHECK(manager.ok()) << manager.status().ToString();

    ParallelIngestEngine engine = IngestEngineBuilder(predictor_config)
                                      .PublishEveryEdges(cadence)
                                      .PublishTo(*manager)
                                      .BuildEngine();
    VectorEdgeStream stream(g.edges);
    Stopwatch timer;
    SL_CHECK_OK(engine.Build(stream).status());
    const double seconds = timer.ElapsedSeconds();

    const uint64_t checkpoints = g.edges.size() / cadence +
                                 (g.edges.size() % cadence ? 1 : 0);
    sweep.AddRow(
        {std::to_string(cadence), std::to_string(checkpoints),
         ResultTable::Cell(DirSnapshotBytes(*manager) / 1e6),
         ResultTable::Cell(seconds),
         ResultTable::Cell(baseline_seconds > 0 ? seconds / baseline_seconds
                                                : 0.0),
         ResultTable::Cell(checkpoints > 0
                               ? (seconds - baseline_seconds) * 1e3 /
                                     checkpoints
                               : 0.0)});
  }
  sweep.Emit(config);

  // Part 2: kill at ~50%, resume, verify byte identity.
  std::printf("\nkill-and-resume (crash at 50%% of the stream):\n");
  const uint64_t killed_at = g.edges.size() / 2;
  const std::string resume_dir = base_dir + "/resume";
  const std::string ref_snap = base_dir + "/reference.snap";
  const std::string resumed_snap = base_dir + "/resumed.snap";

  // Reference: uninterrupted build, saved through the same fold path.
  {
    VectorEdgeStream stream(g.edges);
    auto built = IngestEngineBuilder(predictor_config).Ingest(stream);
    SL_CHECK_OK(built.status());
    std::unique_ptr<LinkPredictor> predictor = std::move(*built);
    if (auto folded = predictor->Clone()) predictor = std::move(folded);
    SL_CHECK_OK(predictor->Save(ref_snap));
  }

  // Interrupted run: the engine only ever sees the stream prefix.
  {
    auto manager = CheckpointManager::Open(
        CheckpointOptions{resume_dir, /*keep=*/3});
    SL_CHECK(manager.ok());
    ParallelIngestEngine engine =
        IngestEngineBuilder(predictor_config)
            .PublishEveryEdges(std::max<uint64_t>(1, g.edges.size() / 10))
            .PublishTo(*manager)
            .BuildEngine();
    PrefixEdgeStream prefix(std::make_unique<VectorEdgeStream>(g.edges),
                            killed_at);
    SL_CHECK_OK(engine.Build(prefix).status());
  }

  // Resume in a fresh manager (a fresh process image after the crash).
  auto manager = CheckpointManager::Open(
      CheckpointOptions{resume_dir, /*keep=*/3});
  SL_CHECK(manager.ok());
  Stopwatch restore_clock;
  auto restored = manager->RestoreLatest();
  const double restore_seconds = restore_clock.ElapsedSeconds();
  SL_CHECK(restored.ok()) << restored.status().ToString();

  Stopwatch resume_clock;
  std::unique_ptr<LinkPredictor> resumed = std::move(restored->predictor);
  SkipEdgeStream remainder(std::make_unique<VectorEdgeStream>(g.edges),
                           restored->entry.stream_edges);
  Edge edge;
  while (remainder.Next(&edge)) resumed->OnEdge(edge);
  if (auto folded = resumed->Clone()) resumed = std::move(folded);
  const double resume_seconds = resume_clock.ElapsedSeconds();
  SL_CHECK_OK(resumed->Save(resumed_snap));

  const bool identical =
      ReadFileBytes(ref_snap) == ReadFileBytes(resumed_snap);
  ResultTable resume_table({"restored_at_edge", "restore_seconds",
                            "resume_seconds", "full_build_seconds",
                            "byte_identical"});
  resume_table.AddRow({std::to_string(restored->entry.stream_edges),
                       ResultTable::Cell(restore_seconds),
                       ResultTable::Cell(resume_seconds),
                       ResultTable::Cell(baseline_seconds),
                       identical ? "yes" : "NO"});
  BenchReport& report = BenchReport::Get();
  report.AddMetric("restore_seconds", restore_seconds);
  report.AddMetric("resume_seconds", resume_seconds);
  BenchConfig no_csv = config;
  no_csv.out.clear();  // the CSV (if any) carries the sweep table
  resume_table.Emit(no_csv);
  SL_CHECK(identical) << "resumed snapshot differs from reference";

  std::filesystem::remove_all(base_dir);
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, 1.0, 64));
  return 0;
}

// Experiment F10 (extension ablation): one-permutation hashing vs
// k-permutation MinHash.
//
// OPH hashes each update once instead of k times. This bench measures, at
// equal sketch width, (a) ingest throughput and (b) estimation accuracy
// for all three measures. Expected shape: OPH throughput is flat in k
// while k-perm falls as 1/k; OPH accuracy matches k-perm once degrees are
// a few times k and degrades on small neighborhoods (densified bins are
// correlated).

#include <iostream>

#include "bench_common.h"
#include "core/exact_predictor.h"
#include "util/random.h"
#include "util/timer.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("F10", "one-permutation (oph) vs k-permutation (minhash)");
  ResultTable table({"workload", "predictor", "k", "edges_per_sec",
                     "jaccard_mae", "cn_mre", "aa_mre"});

  for (const std::string& workload :
       {std::string("ba"), std::string("ws")}) {
    GeneratedGraph g =
        MakeWorkload(WorkloadSpec{workload, config.scale, config.seed});
    CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
    Rng rng(config.seed + 23);
    auto pairs = SampleOverlappingPairs(csr, config.pairs, rng);
    ExactPredictor exact;
    FeedStream(exact, g.edges);

    for (const std::string& kind :
         {std::string("minhash"), std::string("oph")}) {
      for (uint32_t k : {16u, 64u, 256u, 1024u}) {
        PredictorConfig pc = config.predictor;
        pc.kind = kind;
        pc.sketch_size = k;
        auto predictor = MustMakePredictor(pc);
        Stopwatch sw;
        FeedStream(*predictor, g.edges);
        double rate = sw.Rate(g.edges.size());
        AccuracyReport report =
            MeasureAccuracyAgainst(*predictor, exact, pairs);
        table.AddRow({workload, kind, std::to_string(k),
                      ResultTable::Cell(rate),
                      ResultTable::Cell(report.jaccard.MeanAbsoluteError()),
                      ResultTable::Cell(
                          report.common_neighbors.MeanRelativeError()),
                      ResultTable::Cell(
                          report.adamic_adar.MeanRelativeError())});
      }
    }
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(streamlink::bench::BenchConfig::FromFlags(
      argc, argv, /*scale=*/0.3, /*pairs=*/500));
}

// Experiment F9: space-accuracy tradeoff across sketch families.
//
// Plots bytes/vertex against Jaccard error for the k-permutation MinHash
// and bottom-k predictors. Both store 16-byte entries, so equal k is equal
// space; the question is which estimator extracts more accuracy per byte
// (and bottom-k additionally pays only one hash per update). Expected
// shape: comparable JC error at equal space with bottom-k slightly ahead
// on large neighborhoods; MinHash ahead on AA (arg-min samples per slot).

#include <iostream>

#include "bench_common.h"
#include "core/exact_predictor.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("F9", "space vs accuracy: minhash vs bottomk");
  ResultTable table({"predictor", "k", "bytes_per_vertex", "jaccard_mae",
                     "cn_mre", "aa_mre"});

  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", config.scale,
                                               config.seed});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(config.seed + 17);
  auto pairs = SampleOverlappingPairs(csr, config.pairs, rng);
  ExactPredictor exact;
  FeedStream(exact, g.edges);

  for (const std::string& kind :
       {std::string("minhash"), std::string("bottomk")}) {
    for (uint32_t k : {8u, 16u, 32u, 64u, 128u, 256u}) {
      PredictorConfig pc = config.predictor;
      pc.kind = kind;
      pc.sketch_size = k;
      auto predictor = MustMakePredictor(pc);
      FeedStream(*predictor, g.edges);
      AccuracyReport report =
          MeasureAccuracyAgainst(*predictor, exact, pairs);
      double per_vertex = static_cast<double>(predictor->MemoryBytes()) /
                          predictor->num_vertices();
      table.AddRow({kind, std::to_string(k), ResultTable::Cell(per_vertex),
                    ResultTable::Cell(report.jaccard.MeanAbsoluteError()),
                    ResultTable::Cell(
                        report.common_neighbors.MeanRelativeError()),
                    ResultTable::Cell(
                        report.adamic_adar.MeanRelativeError())});
    }
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(streamlink::bench::BenchConfig::FromFlags(
      argc, argv, /*scale=*/0.2, /*pairs=*/600));
}

// Experiment F2: estimation accuracy vs sketch size.
//
// The paper's core accuracy figure: mean relative error of the Jaccard,
// common-neighbor, and Adamic-Adar estimators as the per-vertex sketch
// size k grows, on several graph streams. Expected shape: error decays
// like 1/sqrt(k) for every measure and workload.

#include <iostream>

#include "bench_common.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("F2", "estimation error vs sketch size k");
  ResultTable table({"workload", "predictor", "k", "jaccard_mre", "cn_mre",
                     "aa_mre", "jaccard_mae", "pairs"});

  const std::vector<std::string> workloads = {"ba", "rmat", "sbm"};
  const std::vector<uint32_t> sketch_sizes = {8, 16, 32, 64, 128, 256, 512};
  const std::vector<std::string> predictors = {"minhash", "bottomk",
                                               "vertex_biased"};

  for (const std::string& workload : workloads) {
    GeneratedGraph g =
        MakeWorkload(WorkloadSpec{workload, config.scale, config.seed});
    CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
    Rng rng(config.seed + 7);
    auto pairs = SampleOverlappingPairs(csr, config.pairs, rng);

    for (const std::string& kind : predictors) {
      for (uint32_t k : sketch_sizes) {
        PredictorConfig pc = config.predictor;
        pc.kind = kind;
        pc.sketch_size = k;
        AccuracyReport report = MeasureAccuracy(g, pc, pairs);
        table.AddRow({workload, kind, std::to_string(k),
                      ResultTable::Cell(report.jaccard.MeanRelativeError()),
                      ResultTable::Cell(
                          report.common_neighbors.MeanRelativeError()),
                      ResultTable::Cell(
                          report.adamic_adar.MeanRelativeError()),
                      ResultTable::Cell(report.jaccard.MeanAbsoluteError()),
                      std::to_string(report.query_pairs)});
      }
    }
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(streamlink::bench::BenchConfig::FromFlags(
      argc, argv, /*scale=*/0.2, /*pairs=*/500));
}

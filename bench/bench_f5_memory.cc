// Experiment F5: memory footprint vs graph size and density.
//
// The space claim: sketches cost O(k) bytes per vertex regardless of
// degree, while the exact adjacency baseline grows with average degree.
// Expected shape: flat bytes/vertex lines for sketches across densities;
// a rising line for exact.

#include <iostream>

#include "bench_common.h"
#include "gen/barabasi_albert.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("F5", "memory bytes/vertex: sketch vs exact");
  ResultTable table({"vertices", "edges_per_vertex", "predictor", "k",
                     "total_mbytes", "bytes_per_vertex"});

  const VertexId base_n =
      static_cast<VertexId>(10000 * config.scale) + 1000;
  for (uint32_t edges_per_vertex : {4u, 8u, 16u, 32u}) {
    Rng rng(config.seed);
    BarabasiAlbertParams params;
    params.num_vertices = base_n;
    params.edges_per_vertex = edges_per_vertex;
    GeneratedGraph g = GenerateBarabasiAlbert(params, rng);

    struct Variant {
      std::string kind;
      uint32_t k;
    };
    for (const Variant& v :
         {Variant{"exact", 0}, Variant{"minhash", 64},
          Variant{"bottomk", 64}, Variant{"vertex_biased", 64}}) {
      PredictorConfig pc = config.predictor;
      pc.kind = v.kind;
      pc.sketch_size = v.k == 0 ? 64 : v.k;  // ignored by exact
      auto predictor = MustMakePredictor(pc);
      FeedStream(*predictor, g.edges);
      double per_vertex = predictor->num_vertices() > 0
                              ? static_cast<double>(predictor->MemoryBytes()) /
                                    predictor->num_vertices()
                              : 0.0;
      table.AddRow({std::to_string(base_n),
                    std::to_string(edges_per_vertex), v.kind,
                    v.kind == "exact" ? "-" : std::to_string(v.k),
                    ResultTable::Cell(predictor->MemoryBytes() / 1e6),
                    ResultTable::Cell(per_vertex)});
    }
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, /*scale=*/1.0));
}

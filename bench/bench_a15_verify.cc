// A15: differential-oracle report — every predictor kind's empirical
// error against its analytic tolerance on one seeded stream. Not a
// paper figure; the auditing companion to the `verify` ctest lane
// (docs/verification.md), sized so a failure here reproduces exactly
// in CI. Flags: --scale --pairs --sketch-size --seed --threads --out.

#include "bench_common.h"
#include "verify/differential.h"

namespace streamlink {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config =
      BenchConfig::FromFlags(argc, argv, /*default_scale=*/1.0,
                             /*default_pairs=*/1000);
  Banner("A15", "differential oracle: empirical error vs analytic bounds");

  DifferentialOracleOptions options;
  // The oracle's own defaults are CI-sized; the bench scales them up so
  // the statistics are tighter (scale 1.0 ≈ 20x the CI stream).
  options.scale = 0.05 * config.scale;
  options.query_pairs = config.pairs;
  options.sketch_size = config.predictor.sketch_size;
  options.seed = config.seed;
  options.threads = config.predictor.threads;

  auto report = RunDifferentialOracle(options);
  SL_CHECK(report.ok()) << report.status().ToString();
  std::printf("stream: %llu edges, %u vertices\n",
              static_cast<unsigned long long>(report->stream_edges),
              report->num_vertices);

  ResultTable table({"kind", "slots", "epsilon", "queries", "jac_viol",
                     "cn_viol", "allowed", "max_err", "mean_err", "pass"});
  for (const DifferentialKindReport& kr : report->kinds) {
    table.AddRow({kr.kind, std::to_string(kr.jaccard_slots),
                  ResultTable::Cell(kr.epsilon), std::to_string(kr.queries),
                  std::to_string(kr.jaccard_violations),
                  std::to_string(kr.common_neighbor_violations),
                  std::to_string(kr.allowed_violations),
                  ResultTable::Cell(kr.max_jaccard_error),
                  ResultTable::Cell(kr.mean_jaccard_error),
                  kr.passed ? "yes" : "NO"});
  }
  table.Emit(config);
  if (!report->all_passed) {
    std::printf("%s\n", FormatReport(*report).c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Main(argc, argv);
}

// F16: ingestion throughput vs thread count for the parallel sharded
// engine. Builds the same RMAT stream with 1/2/4/8 ingestion workers and
// reports edges/sec plus speedup over the 1-thread engine build; a final
// column confirms the sharded result stayed bit-identical to a sequential
// build on sampled queries. Speedup columns only mean anything when the
// machine has that many hardware threads — the binary prints the count.

#include <thread>

#include "bench_common.h"
#include "core/link_predictor.h"
#include "gen/workloads.h"
#include "obs/metrics.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

/// Fraction of `pairs` sampled queries on which the two predictors give
/// bit-identical estimates (1.0 = lossless).
double IdenticalFraction(const LinkPredictor& a, const LinkPredictor& b,
                         VertexId num_vertices, uint32_t pairs,
                         uint64_t seed) {
  Rng rng(seed);
  uint32_t identical = 0;
  for (uint32_t i = 0; i < pairs; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    OverlapEstimate ea = a.EstimateOverlap(u, v);
    OverlapEstimate eb = b.EstimateOverlap(u, v);
    identical += (ea.jaccard == eb.jaccard &&
                  ea.intersection == eb.intersection &&
                  ea.adamic_adar == eb.adamic_adar &&
                  ea.resource_allocation == eb.resource_allocation);
  }
  return static_cast<double>(identical) / pairs;
}

void Run(const BenchConfig& config) {
  Banner("F16", "parallel sharded ingestion: throughput vs threads");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  GeneratedGraph g =
      MakeWorkload(WorkloadSpec{"rmat", config.scale, config.seed});
  std::printf("stream: %zu edges, %u vertices\n\n", g.edges.size(),
              g.num_vertices);

  PredictorConfig predictor_config = config.predictor;
  predictor_config.kind = "minhash";
  predictor_config.sketch_size = 256;

  // Sequential reference for the equivalence column.
  predictor_config.threads = 1;
  ParallelIngestEngine reference_engine(predictor_config);
  VectorEdgeStream reference_stream(g.edges);
  auto reference = reference_engine.Build(reference_stream);
  SL_CHECK_OK(reference.status());

  ResultTable table(
      {"threads", "seconds", "edges_per_sec", "speedup", "identical"});
  double baseline_seconds = 0;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    predictor_config.threads = threads;
    ParallelIngestEngine engine(predictor_config);
    VectorEdgeStream stream(g.edges);
    Stopwatch timer;
    auto built = engine.Build(stream);
    double seconds = timer.ElapsedSeconds();
    SL_CHECK_OK(built.status());
    if (threads == 1) baseline_seconds = seconds;
    double identical = IdenticalFraction(
        **reference, **built, g.num_vertices, config.pairs, config.seed);
    table.AddRow({std::to_string(threads), ResultTable::Cell(seconds),
                  ResultTable::Cell(g.edges.size() / seconds),
                  ResultTable::Cell(baseline_seconds / seconds),
                  ResultTable::Cell(identical)});
    SL_CHECK(identical == 1.0)
        << threads << "-thread build diverged from sequential";
    if (threads == 4) {
      BenchReport::Get().AddMetric("ingest_4t_eps", g.edges.size() / seconds);
    }
  }
  table.Emit(config);

  // Observability overhead: the same 4-thread build with the ingest.*
  // instrumentation bound vs left null (null pointers are the compiled-out
  // baseline — every metric update is skipped). Best of 3 per side to damp
  // scheduler noise; the obs acceptance bar is < 2% throughput delta.
  std::printf("\nmetrics overhead (4 threads, best of 3):\n");
  predictor_config.threads = 4;
  obs::MetricsRegistry registry;
  double best_off = 0, best_on = 0;
  for (int rep = 0; rep < 3; ++rep) {
    for (bool wired : {false, true}) {
      ParallelIngestOptions options;
      options.metrics = wired ? &registry : nullptr;
      ParallelIngestEngine engine(predictor_config, options);
      VectorEdgeStream stream(g.edges);
      Stopwatch timer;
      SL_CHECK_OK(engine.Build(stream).status());
      const double eps = g.edges.size() / timer.ElapsedSeconds();
      double& best = wired ? best_on : best_off;
      if (eps > best) best = eps;
    }
  }
  const double overhead_pct = 100.0 * (best_off - best_on) / best_off;
  std::printf("  metrics off: %s edges/sec\n",
              ResultTable::Cell(best_off).c_str());
  std::printf("  metrics on:  %s edges/sec\n",
              ResultTable::Cell(best_on).c_str());
  std::printf("  overhead:    %.2f%%\n", overhead_pct);
  BenchReport& report = BenchReport::Get();
  report.AddMetric("metrics_off_eps", best_off);
  report.AddMetric("metrics_on_eps", best_on);
  report.AddMetric("metrics_overhead_pct", overhead_pct);
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, 1.0, 1000));
  return 0;
}

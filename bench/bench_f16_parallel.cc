// F16: ingestion throughput vs thread count for the parallel engine.
// Builds the same RMAT stream with 1/2/4/8 ingestion workers in both
// ordering modes and reports edges/sec plus speedup over the 1-thread
// build. Ordered (vertex-sharded, SPSC ring hand-off) must stay
// bit-identical to a sequential build — asserted on sampled queries.
// Relaxed (edge-partitioned replicas, end-of-stream merge) promises only
// oracle-bounded estimates; its identical column is reported, not
// asserted. Speedup columns only mean anything when the machine has that
// many hardware threads — the binary prints the count.

#include <algorithm>
#include <thread>

#include "bench_common.h"
#include "core/link_predictor.h"
#include "gen/workloads.h"
#include "obs/metrics.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

/// Fraction of `pairs` sampled queries on which the two predictors give
/// bit-identical estimates (1.0 = lossless).
double IdenticalFraction(const LinkPredictor& a, const LinkPredictor& b,
                         VertexId num_vertices, uint32_t pairs,
                         uint64_t seed) {
  Rng rng(seed);
  uint32_t identical = 0;
  for (uint32_t i = 0; i < pairs; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    OverlapEstimate ea = a.EstimateOverlap(u, v);
    OverlapEstimate eb = b.EstimateOverlap(u, v);
    identical += (ea.jaccard == eb.jaccard &&
                  ea.intersection == eb.intersection &&
                  ea.adamic_adar == eb.adamic_adar &&
                  ea.resource_allocation == eb.resource_allocation);
  }
  return static_cast<double>(identical) / pairs;
}

/// One thread-scaling sweep in the given ordering mode. Returns the
/// 4-thread edges/sec for the report — best of 3 at that row, because
/// the single-shot number is scheduler roulette when the machine has
/// fewer hardware threads than workers (the bench_diff gate needs a
/// stable metric; the table rows stay single-shot).
double Sweep(IngestOrdering ordering, const PredictorConfig& base,
             const GeneratedGraph& g, const LinkPredictor& reference,
             const BenchConfig& config) {
  std::printf("%s mode:\n", IngestOrderingName(ordering).c_str());
  ResultTable table(
      {"threads", "seconds", "edges_per_sec", "speedup", "identical"});
  double baseline_seconds = 0;
  double eps_4t = 0;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    VectorEdgeStream stream(g.edges);
    Stopwatch timer;
    auto built = IngestEngineBuilder(base)
                     .Threads(threads)
                     .Ordering(ordering)
                     .Ingest(stream);
    double seconds = timer.ElapsedSeconds();
    SL_CHECK_OK(built.status());
    if (threads == 1) baseline_seconds = seconds;
    if (threads == 4) {
      eps_4t = g.edges.size() / seconds;
      for (int rep = 0; rep < 2; ++rep) {
        VectorEdgeStream retry_stream(g.edges);
        Stopwatch retry_timer;
        SL_CHECK_OK(IngestEngineBuilder(base)
                        .Threads(threads)
                        .Ordering(ordering)
                        .Ingest(retry_stream)
                        .status());
        eps_4t = std::max(
            eps_4t, g.edges.size() / retry_timer.ElapsedSeconds());
      }
    }
    double identical = IdenticalFraction(
        reference, **built, g.num_vertices, config.pairs, config.seed);
    table.AddRow({std::to_string(threads), ResultTable::Cell(seconds),
                  ResultTable::Cell(g.edges.size() / seconds),
                  ResultTable::Cell(baseline_seconds / seconds),
                  ResultTable::Cell(identical)});
    // Only ordered mode promises bit-identity; relaxed is covered by the
    // differential oracle (src/verify/) instead.
    if (ordering == IngestOrdering::kOrdered) {
      SL_CHECK(identical == 1.0)
          << threads << "-thread ordered build diverged from sequential";
    }
  }
  table.Emit(config);
  std::printf("\n");
  return eps_4t;
}

void Run(const BenchConfig& config) {
  Banner("F16", "parallel ingestion: throughput vs threads and ordering");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  GeneratedGraph g =
      MakeWorkload(WorkloadSpec{"rmat", config.scale, config.seed});
  std::printf("stream: %zu edges, %u vertices\n\n", g.edges.size(),
              g.num_vertices);

  PredictorConfig predictor_config = config.predictor;
  predictor_config.kind = "minhash";
  predictor_config.sketch_size = 256;

  // Sequential reference for the equivalence columns.
  predictor_config.threads = 1;
  VectorEdgeStream reference_stream(g.edges);
  auto reference =
      IngestEngineBuilder(predictor_config).Ingest(reference_stream);
  SL_CHECK_OK(reference.status());

  BenchReport& report = BenchReport::Get();
  const double ordered_4t = Sweep(IngestOrdering::kOrdered, predictor_config,
                                  g, **reference, config);
  report.AddMetric("ingest_4t_eps", ordered_4t);
  const double relaxed_4t = Sweep(IngestOrdering::kRelaxed, predictor_config,
                                  g, **reference, config);
  report.AddMetric("relaxed_4t_eps", relaxed_4t);

  // Observability overhead: the same 4-thread ordered build with the
  // ingest.* instrumentation bound vs left null (null pointers are the
  // compiled-out baseline — every metric update is skipped). Best of 3 per
  // side to damp scheduler noise; the obs acceptance bar is < 2%
  // throughput delta.
  std::printf("metrics overhead (4 threads, ordered, best of 3):\n");
  obs::MetricsRegistry registry;
  double best_off = 0, best_on = 0;
  for (int rep = 0; rep < 3; ++rep) {
    for (bool wired : {false, true}) {
      VectorEdgeStream stream(g.edges);
      Stopwatch timer;
      auto built = IngestEngineBuilder(predictor_config)
                       .Threads(4)
                       .Metrics(wired ? &registry : nullptr)
                       .Ingest(stream);
      SL_CHECK_OK(built.status());
      const double eps = g.edges.size() / timer.ElapsedSeconds();
      double& best = wired ? best_on : best_off;
      if (eps > best) best = eps;
    }
  }
  const double overhead_pct = 100.0 * (best_off - best_on) / best_off;
  std::printf("  metrics off: %s edges/sec\n",
              ResultTable::Cell(best_off).c_str());
  std::printf("  metrics on:  %s edges/sec\n",
              ResultTable::Cell(best_on).c_str());
  std::printf("  overhead:    %.2f%%\n", overhead_pct);
  report.AddMetric("metrics_off_eps", best_off);
  report.AddMetric("metrics_on_eps", best_on);
  report.AddMetric("metrics_overhead_pct", overhead_pct);
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, 1.0, 1000));
  return 0;
}

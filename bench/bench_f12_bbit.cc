// Experiment F12 (extension ablation): b-bit MinHash payload compression.
//
// When sketches are shipped (distributed ingestion) or persisted
// (snapshots), payload bytes dominate. b-bit MinHash keeps b ∈ {1,2,4,8}
// bits per slot with a closed-form bias correction. This bench compares
// Jaccard accuracy at *equal payload bytes*: a b-bit sketch affords 64/b×
// more slots than the full 64-bit sketch. Expected shape (Li & König):
// at equal bytes, smaller b wins for Jaccard estimation on all but the
// tiniest similarities — the variance per slot grows only by
// 1/(1−2^-b)² while the slot count grows by 64/b.

#include <iostream>

#include "bench_common.h"
#include "graph/adjacency_graph.h"
#include "graph/exact_measures.h"
#include "sketch/minhash.h"
#include "sketch/bbit_minhash.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("F12", "b-bit minhash: accuracy at equal payload bytes");
  ResultTable table({"bits", "k", "payload_bytes_per_vertex", "jaccard_mae",
                     "jaccard_p90_abs_err"});

  GeneratedGraph g =
      MakeWorkload(WorkloadSpec{"ws", config.scale, config.seed});
  AdjacencyGraph graph;
  for (const Edge& e : g.edges) graph.AddEdge(e);
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(config.seed + 31);
  auto pairs = SampleOverlappingPairs(csr, config.pairs, rng);

  // Equal payload budget: 64 bytes per vertex.
  struct Variant {
    uint32_t bits;  // 0 = full 64-bit MinHash reference
    uint32_t k;
  };
  const Variant variants[] = {
      {0, 8},     // 8 slots * 8 bytes = 64 B
      {8, 64},    // 64 slots * 1 byte  = 64 B
      {4, 128},   // 128 slots * 4 bits = 64 B
      {2, 256},   // 256 slots * 2 bits = 64 B
      {1, 512},   // 512 slots * 1 bit  = 64 B
  };

  for (const Variant& v : variants) {
    HashFamily family(config.seed, v.k);
    std::vector<double> abs_errors;
    double total_error = 0.0;

    if (v.bits == 0) {
      // Full-width reference: MinHashSketch.
      std::vector<MinHashSketch> sketches(
          g.num_vertices, MinHashSketch(v.k));
      for (const Edge& e : g.edges) {
        sketches[e.u].Update(e.v, family);
        sketches[e.v].Update(e.u, family);
      }
      for (const QueryPair& p : pairs) {
        double truth = ComputeOverlap(graph, p.u, p.v).Jaccard();
        double est =
            MinHashSketch::EstimateJaccard(sketches[p.u], sketches[p.v]);
        abs_errors.push_back(std::abs(est - truth));
        total_error += abs_errors.back();
      }
    } else {
      std::vector<BBitMinHash> sketches(g.num_vertices,
                                        BBitMinHash(v.k, v.bits));
      for (const Edge& e : g.edges) {
        sketches[e.u].Update(e.v, family);
        sketches[e.v].Update(e.u, family);
      }
      for (const QueryPair& p : pairs) {
        double truth = ComputeOverlap(graph, p.u, p.v).Jaccard();
        double est =
            BBitMinHash::EstimateJaccard(sketches[p.u], sketches[p.v]);
        abs_errors.push_back(std::abs(est - truth));
        total_error += abs_errors.back();
      }
    }
    std::sort(abs_errors.begin(), abs_errors.end());
    double p90 = abs_errors[static_cast<size_t>(0.9 * (abs_errors.size() - 1))];
    table.AddRow({v.bits == 0 ? "64 (full)" : std::to_string(v.bits),
                  std::to_string(v.k), "64",
                  ResultTable::Cell(total_error / abs_errors.size()),
                  ResultTable::Cell(p90)});
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(streamlink::bench::BenchConfig::FromFlags(
      argc, argv, /*scale=*/0.2, /*pairs=*/600));
}

// Experiment T1: dataset statistics table.
//
// The paper opens its evaluation with a table of graph-stream datasets
// (|V|, |E|, density, skew). Our stand-ins are the six synthetic workloads
// (DESIGN.md §4); this binary regenerates the table.

#include <iostream>

#include "bench_common.h"
#include "graph/graph_stats.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("T1", "workload statistics (paper: dataset table)");
  ResultTable table({"workload", "vertices", "edges", "avg_deg", "max_deg",
                     "skew", "clustering", "triangles", "isolated",
                     "pl_alpha"});

  for (const std::string& name : StandardWorkloadNames()) {
    GeneratedGraph g =
        MakeWorkload(WorkloadSpec{name, config.scale, config.seed});
    CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
    Rng rng(config.seed + 1);
    // Exact stats are affordable at default scale; sampling keeps large
    // --scale runs fast.
    GraphStats stats = csr.num_edges() < 500000
                           ? ComputeGraphStats(csr)
                           : ComputeGraphStatsSampled(csr, 200000, rng);
    double alpha = FitPowerLawExponent(DegreeHistogram(csr), 2);
    table.AddRow({name, std::to_string(stats.num_vertices),
                  std::to_string(stats.num_edges),
                  ResultTable::Cell(stats.avg_degree),
                  std::to_string(stats.max_degree),
                  ResultTable::Cell(stats.degree_skew),
                  ResultTable::Cell(stats.global_clustering),
                  std::to_string(stats.num_triangles),
                  std::to_string(stats.num_isolated),
                  ResultTable::Cell(alpha)});
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, /*scale=*/0.5));
}

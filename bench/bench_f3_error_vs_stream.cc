// Experiment F3: estimation error over stream progress.
//
// The paper shows the sketches stay accurate *throughout* the stream, not
// just at the end: estimation error measured at checkpoints while the
// stream is consumed. Expected shape: roughly flat error (the sketch
// tracks the evolving graph with no drift).

#include <iostream>

#include "bench_common.h"
#include "core/exact_predictor.h"
#include "stream/edge_stream.h"
#include "stream/stream_driver.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  Banner("F3", "estimation error at checkpoints over the stream");
  ResultTable table({"workload", "predictor", "fraction", "edges",
                     "jaccard_mae", "cn_mre", "aa_mre"});

  const std::vector<std::string> workloads = {"ba", "ws"};
  const uint32_t k = 128;

  for (const std::string& workload : workloads) {
    GeneratedGraph g =
        MakeWorkload(WorkloadSpec{workload, config.scale, config.seed});
    CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
    Rng rng(config.seed + 13);
    // Pairs are sampled from the *final* graph; at early checkpoints their
    // overlap is smaller but the exact baseline evolves in lockstep.
    auto pairs = SampleOverlappingPairs(csr, config.pairs, rng);

    for (const std::string& kind :
         {std::string("minhash"), std::string("bottomk")}) {
      PredictorConfig pc = config.predictor;
      pc.kind = kind;
      pc.sketch_size = k;
      auto predictor = MustMakePredictor(pc);
      ExactPredictor exact;

      StreamDriver driver;
      driver.AddConsumer(predictor.get());
      driver.AddConsumer(&exact);
      driver.SetCheckpoints(
          {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
          [&](uint64_t consumed, double fraction) {
            AccuracyReport report =
                MeasureAccuracyAgainst(*predictor, exact, pairs);
            table.AddRow(
                {workload, kind, ResultTable::Cell(fraction),
                 std::to_string(consumed),
                 ResultTable::Cell(report.jaccard.MeanAbsoluteError()),
                 ResultTable::Cell(
                     report.common_neighbors.MeanRelativeError()),
                 ResultTable::Cell(report.adamic_adar.MeanRelativeError())});
          });
      VectorEdgeStream stream(g.edges);
      driver.Run(stream);
    }
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(streamlink::bench::BenchConfig::FromFlags(
      argc, argv, /*scale=*/0.2, /*pairs=*/400));
}

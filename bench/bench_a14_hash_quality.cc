// Experiment A14 (ablation): hash-family quality.
//
// The library's default hash family is a seeded SplitMix-style mixer:
// fast, but with no formal independence guarantee. Simple tabulation
// hashing is 3-independent and provably gives Chernoff-type concentration
// for min-wise estimation (Pătraşcu & Thorup). This bench runs the
// MinHash Jaccard estimator with both families at several k on real
// neighborhoods and reports error plus hashing throughput. Expected
// shape: indistinguishable accuracy (the mixer behaves "random enough"
// on graph ids), with tabulation paying a small per-hash cost — the
// evidence backing the default choice.

#include <iostream>

#include "bench_common.h"
#include "graph/adjacency_graph.h"
#include "graph/exact_measures.h"
#include "sketch/minhash.h"
#include "util/random.h"
#include "util/timer.h"

namespace streamlink {
namespace bench {
namespace {

template <typename FamilyT>
void MeasureFamily(const std::string& label, const GeneratedGraph& g,
                   const AdjacencyGraph& exact,
                   const std::vector<QueryPair>& pairs, uint32_t k,
                   uint64_t seed, ResultTable& table) {
  FamilyT family(seed, k);
  Stopwatch sw;
  std::vector<MinHashSketch> sketches(g.num_vertices, MinHashSketch(k));
  for (const Edge& e : g.edges) {
    sketches[e.u].Update(e.v, family);
    sketches[e.v].Update(e.u, family);
  }
  double rate = sw.Rate(g.edges.size());

  double total_error = 0.0;
  for (const QueryPair& p : pairs) {
    double truth = ComputeOverlap(exact, p.u, p.v).Jaccard();
    double est =
        MinHashSketch::EstimateJaccard(sketches[p.u], sketches[p.v]);
    total_error += std::abs(est - truth);
  }
  table.AddRow({label, std::to_string(k),
                ResultTable::Cell(total_error / pairs.size()),
                ResultTable::Cell(rate)});
}

int Run(const BenchConfig& config) {
  Banner("A14", "hash family ablation: mixer vs tabulation");
  ResultTable table({"family", "k", "jaccard_mae", "edges_per_sec"});

  GeneratedGraph g =
      MakeWorkload(WorkloadSpec{"ba", config.scale, config.seed});
  AdjacencyGraph exact;
  for (const Edge& e : g.edges) exact.AddEdge(e);
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(config.seed + 41);
  auto pairs = SampleOverlappingPairs(csr, config.pairs, rng);

  for (uint32_t k : {16u, 64u, 256u}) {
    MeasureFamily<HashFamily>("mixer", g, exact, pairs, k, config.seed,
                              table);
    MeasureFamily<TabulationFamily>("tabulation", g, exact, pairs, k,
                                    config.seed, table);
  }
  table.Emit(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  return streamlink::bench::Run(streamlink::bench::BenchConfig::FromFlags(
      argc, argv, /*scale=*/0.2, /*pairs=*/600));
}

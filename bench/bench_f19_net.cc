// F19: the network serving front end under load (docs/net.md). Stands up
// a NetServer over a snapshot-backed QueryService on a loopback ephemeral
// port, then drives it with the open-loop load generator:
//
//   1. capacity calibration — closed loop, to find what the box can do;
//   2. an unloaded pass — closed loop, one connection, for the baseline
//      service-time percentiles;
//   3. a shape sweep — steady / diurnal / bursty / hot-key arrival
//      patterns at half the calibrated capacity, open loop, reporting the
//      coordinated-omission-free p50/p99/p999 plus the shed rate;
//   4. an overload burst — 4x the calibrated capacity with more
//      connections than the admission queue holds. The point of the whole
//      subsystem: the server sheds (shed rate > 0) and the *admitted*
//      requests keep a bounded service-time p99 instead of queueing
//      without limit.
//
// Only closed-loop capacity_qps is diff-gated (check-bench-net): on a
// shared container every latency percentile swings 2x+ with co-tenant
// load, so the percentiles and shed rate are reported ungated and the
// binary itself enforces the acceptance claims (shed > 0, admitted p99
// within 10x of unloaded) with SL_CHECKs on every run. Open-loop
// scheduled-time tails go in the table only — they measure the offered
// backlog, not the server.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/predictor_factory.h"
#include "eval/experiment.h"
#include "gen/workloads.h"
#include "net/client.h"
#include "net/load_gen.h"
#include "net/server.h"
#include "obs/exemplar.h"
#include "obs/metrics.h"
#include "serve/query_service.h"
#include "util/logging.h"

namespace streamlink {
namespace bench {
namespace {

net::LoadReport MustRun(const net::LoadGenOptions& options) {
  auto report = net::RunLoad(options);
  SL_CHECK(report.ok()) << report.status().ToString();
  SL_CHECK(report->errors == 0)
      << report->errors << " transport errors against loopback server";
  return *report;
}

/// Percentile of the samples a histogram gained between two registry
/// snapshots, linearly interpolated inside the power-of-two bucket the
/// rank lands in. The server-side net.request_latency_ns histogram read
/// this way is what makes the latency claims honest on a small box:
/// client-side timestamps include the client thread's own wait for a CPU
/// slice, which under 12 runnable threads on 2 cores adds a ~50ms tail
/// that has nothing to do with the server's queue.
double DeltaPercentile(const obs::MetricsSnapshot& before,
                       const obs::MetricsSnapshot& after,
                       const std::string& name, double p) {
  auto find = [&name](const obs::MetricsSnapshot& snap)
      -> const obs::HistogramSample* {
    for (const auto& h : snap.histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  };
  const obs::HistogramSample* b = find(before);
  const obs::HistogramSample* a = find(after);
  if (a == nullptr) return 0.0;
  std::map<uint64_t, int64_t> delta;
  for (const auto& [bound, count] : a->buckets) {
    delta[bound] += static_cast<int64_t>(count);
  }
  if (b != nullptr) {
    for (const auto& [bound, count] : b->buckets) {
      delta[bound] -= static_cast<int64_t>(count);
    }
  }
  int64_t n = 0;
  for (const auto& [bound, count] : delta) n += count;
  if (n <= 0) return 0.0;
  int64_t rank = static_cast<int64_t>(std::ceil(p * static_cast<double>(n)));
  rank = std::clamp<int64_t>(rank, 1, n);
  int64_t seen = 0;
  double result = 0.0;
  for (const auto& [bound, count] : delta) {
    if (count <= 0) continue;
    if (seen + count >= rank) {
      const double lower = static_cast<double>(bound) / 2.0;
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(count);
      return lower + frac * (static_cast<double>(bound) - lower);
    }
    seen += count;
    result = static_cast<double>(bound);
  }
  return result;
}

void Run(const BenchConfig& config) {
  Banner("F19", "network serving: admission control under open-loop load");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  GeneratedGraph g =
      MakeWorkload(WorkloadSpec{"rmat", config.scale, config.seed});
  PredictorConfig predictor_config = config.predictor;
  predictor_config.sketch_size = 64;
  auto predictor = MakePredictor(predictor_config);
  SL_CHECK(predictor.ok()) << predictor.status().ToString();
  FeedStream(**predictor, g.edges);

  // Registry declared before the service and server (whose gauge
  // callbacks the registry holds), so it dies last.
  obs::MetricsRegistry registry;
  auto built = QueryServiceBuilder()
                   .DefaultMeasures({LinkMeasure::kJaccard})
                   .InitialSnapshot(**predictor, g.edges.size())
                   .Metrics(&registry)
                   .Build();
  SL_CHECK(built.ok()) << built.status().ToString();

  net::NetServerOptions server_options;
  server_options.workers = 2;
  server_options.admission.queue_capacity = 3;
  server_options.metrics = &registry;
  server_options.admin.enabled = true;  // introspection plane under test too
  net::NetServer server;
  SL_CHECK_OK(server.Start(**built, server_options));
  std::printf(
      "serving %u vertices on 127.0.0.1:%u (admin :%u), workers=%u, "
      "queue=%u\n\n",
      g.num_vertices, server.port(), server.admin_port(),
      server_options.workers, server_options.admission.queue_capacity);

  net::LoadGenOptions base;
  base.port = server.port();
  base.pairs_per_request = 16;
  base.node_universe = g.num_vertices;
  base.seed = config.seed;

  // Admin-plane overhead, part 1: the deterministic number. A /metrics
  // scrape occupies the epoll loop thread (accept, parse, snapshot,
  // export, write, close) for its whole service time, and the loop
  // thread is the resource the data path shares with it — so at a given
  // scrape rate, (median scrape time x rate) is the duty cycle the admin
  // plane can steal from serving, to first order an upper bound on the
  // capacity hit. The paired A/B below cross-checks this against real
  // throughput, but on a shared 2-core box round-to-round scheduler
  // noise is 15%+ — far too coarse to resolve a <2% effect — which is
  // why the gate (SL_CHECK) is on the duty cycle, not the A/B delta.
  constexpr int kScrapeProbes = 50;
  constexpr double kScrapeHz = 4.0;
  std::vector<double> scrape_us;
  scrape_us.reserve(kScrapeProbes);
  for (int i = 0; i < kScrapeProbes + 5; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto page =
        net::FetchAdminPage("127.0.0.1", server.admin_port(), "/metrics");
    const auto t1 = std::chrono::steady_clock::now();
    SL_CHECK(page.ok() && page->status == 200) << "/metrics probe failed";
    if (i >= 5) {  // first few warm the connection path and caches
      scrape_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  }
  std::sort(scrape_us.begin(), scrape_us.end());
  const double scrape_median_us = scrape_us[scrape_us.size() / 2];
  const double admin_overhead_pct =
      scrape_median_us * 1e-6 * kScrapeHz * 100.0;

  // Phase 1: closed-loop capacity with as many connections as workers —
  // the sustainable completion rate everything below is sized against.
  // Best-of-3 bare, interleaved with best-of-3 under a 4Hz /metrics
  // scraper — the A/B cross-check on the duty-cycle number above.
  net::LoadGenOptions calibrate = base;
  calibrate.closed_loop = true;
  calibrate.connections = server_options.workers;
  calibrate.duration_seconds = 1.0;
  net::LoadReport capacity;
  net::LoadReport capacity_scraped;
  uint64_t total_scrapes = 0;
  for (int round = 0; round < 3; ++round) {
    // Bare round first, scraped round right after — interleaved so any
    // monotone drift (page cache, thermal, co-tenants) lands on both
    // sides evenly instead of inflating the overhead number.
    const net::LoadReport bare = MustRun(calibrate);
    if (round == 0 || bare.achieved_qps > capacity.achieved_qps) {
      capacity = bare;
    }
    std::atomic<bool> stop_scraper{false};
    std::atomic<uint64_t> scrapes{0};
    std::thread scraper([&server, &stop_scraper, &scrapes] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        auto page =
            net::FetchAdminPage("127.0.0.1", server.admin_port(), "/metrics");
        SL_CHECK(page.ok() && page->status == 200)
            << "/metrics scrape failed mid-load";
        scrapes.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    });
    const net::LoadReport with_scraper = MustRun(calibrate);
    stop_scraper.store(true, std::memory_order_relaxed);
    scraper.join();
    total_scrapes += scrapes.load();
    std::printf("  round %d: bare %.0f qps, scraped %.0f qps\n", round,
                bare.achieved_qps, with_scraper.achieved_qps);
    if (round == 0 ||
        with_scraper.achieved_qps > capacity_scraped.achieved_qps) {
      capacity_scraped = with_scraper;
    }
  }
  const double capacity_qps = std::max(100.0, capacity.achieved_qps);
  const double scraped_qps = std::max(100.0, capacity_scraped.achieved_qps);
  const double admin_ab_delta_pct =
      std::max(0.0, (capacity_qps - scraped_qps) / capacity_qps * 100.0);
  std::printf(
      "admin plane: median /metrics scrape %.0f us -> %.3f%% duty cycle at "
      "%.0f Hz; A/B best-of-3 %.0f vs %.0f qps (delta %.2f%%, noise-bound; "
      "%llu scrapes under load)\n",
      scrape_median_us, admin_overhead_pct, kScrapeHz, capacity_qps,
      scraped_qps, admin_ab_delta_pct,
      static_cast<unsigned long long>(total_scrapes));
  SL_CHECK(admin_overhead_pct < 2.0)
      << "admin plane duty cycle " << admin_overhead_pct
      << "% at " << kScrapeHz << "Hz — /metrics scrape too slow ("
      << scrape_median_us << "us median)";
  const obs::MetricsSnapshot after_capacity = registry.Snapshot();

  // Phase 2: unloaded baseline — one closed-loop connection, so every
  // request has the whole server to itself. The baseline percentiles come
  // from the server-side admission-to-response histogram (see
  // DeltaPercentile) restricted to this phase's samples.
  net::LoadGenOptions unloaded_options = base;
  unloaded_options.closed_loop = true;
  unloaded_options.connections = 1;
  unloaded_options.duration_seconds = 1.0;
  const net::LoadReport unloaded = MustRun(unloaded_options);
  const obs::MetricsSnapshot after_unloaded = registry.Snapshot();
  const char* kLatency = "net.request_latency_ns";
  const double unloaded_p50_us =
      DeltaPercentile(after_capacity, after_unloaded, kLatency, 0.5) / 1e3;
  const double unloaded_p99_us =
      DeltaPercentile(after_capacity, after_unloaded, kLatency, 0.99) / 1e3;

  std::printf(
      "capacity: %.0f qps closed-loop; unloaded server-side p99 %.1f us\n\n",
      capacity_qps, unloaded_p99_us);

  ResultTable table({"phase", "conns", "target_qps", "achieved_qps",
                     "shed_rate", "p50_us", "p99_us", "p999_us",
                     "svc_p99_us"});
  auto add_row = [&table](const char* phase, const net::LoadGenOptions& o,
                          const net::LoadReport& r) {
    table.AddRow({phase, std::to_string(o.connections),
                  ResultTable::Cell(o.closed_loop ? 0.0 : o.target_qps),
                  ResultTable::Cell(r.achieved_qps),
                  ResultTable::Cell(r.shed_rate),
                  ResultTable::Cell(r.p50_us), ResultTable::Cell(r.p99_us),
                  ResultTable::Cell(r.p999_us),
                  ResultTable::Cell(r.service_p99_us)});
  };
  add_row("capacity(closed)", calibrate, capacity);
  add_row("unloaded(closed)", unloaded_options, unloaded);

  // Phase 3: arrival-shape sweep at half capacity, open loop. Scheduled-
  // time percentiles here include any backlog the shape's peaks create —
  // bursty and hot-key runs are expected to show heavier tails (and a
  // nonzero shed rate once a burst outruns the admission queue).
  for (net::LoadShape shape :
       {net::LoadShape::kSteady, net::LoadShape::kDiurnal,
        net::LoadShape::kBursty, net::LoadShape::kHotKey}) {
    net::LoadGenOptions o = base;
    o.shape = shape;
    o.connections = 4;
    o.target_qps = 0.5 * capacity_qps;
    o.duration_seconds = 1.5;
    add_row(net::LoadShapeName(shape), o, MustRun(o));
  }

  // Phase 3b: per-stage breakdown — a traced closed-loop pass. The trace
  // bit in the request makes the server echo its per-stage timeline in
  // every reply, so the client-side columns below are exact per-request
  // stage times, not histogram reconstructions. Encode and write happen
  // at/after encoding the reply and cannot ride the echo; their column
  // comes from the serve.stage.* server-side histograms restricted to
  // this phase's samples.
  const obs::MetricsSnapshot before_traced = registry.Snapshot();
  net::LoadGenOptions traced_options = base;
  traced_options.closed_loop = true;
  traced_options.connections = 1;
  traced_options.duration_seconds = 1.0;
  traced_options.trace = true;
  const net::LoadReport traced = MustRun(traced_options);
  const obs::MetricsSnapshot after_traced = registry.Snapshot();
  SL_CHECK(traced.traced > 0) << "traced pass echoed no stage timelines";
  std::printf("\nper-stage latency, %llu traced responses (us):\n",
              static_cast<unsigned long long>(traced.traced));
  std::printf("  %-16s %12s %12s %14s\n", "stage", "echo_mean", "echo_p99",
              "server_p99");
  for (size_t i = 0; i < obs::kNumServeStages; ++i) {
    const std::string metric =
        std::string("serve.stage.") +
        obs::ServeStageName(static_cast<obs::ServeStage>(i)) + "_ns";
    const double server_p99 =
        DeltaPercentile(before_traced, after_traced, metric, 0.99) / 1e3;
    std::printf("  %-16s %12.1f %12.1f %14.1f\n",
                obs::ServeStageName(static_cast<obs::ServeStage>(i)),
                traced.stage_mean_us[i], traced.stage_p99_us[i], server_p99);
  }
  std::printf("\n");

  // Phase 4: the overload burst — 4x capacity with far more connections
  // than the queue holds, so admission has to say no. One request in
  // flight per connection means the offered concurrency is the connection
  // count; it has to comfortably exceed queue + workers or the clients
  // self-throttle (blocked on their own CPU slice on a small box) before
  // the queue ever fills.
  net::LoadGenOptions overload = base;
  overload.connections = 12;
  overload.target_qps = 4.0 * capacity_qps;
  overload.duration_seconds = 1.0;
  // Best-of-3, like bench_f16's throughput metrics: even server-side, an
  // unluckily descheduled worker can inflate one round's p99 with
  // scheduler wait that has nothing to do with the admission queue. Shed
  // counts accumulate across rounds; the latency claim is judged on the
  // cleanest round.
  net::LoadReport burst;
  uint64_t total_shed = 0;
  uint64_t total_ok = 0;
  double admitted_p99_us = 0.0;
  double admitted_p50_us = 0.0;
  for (int round = 0; round < 3; ++round) {
    const obs::MetricsSnapshot round_start = registry.Snapshot();
    const net::LoadReport repeat = MustRun(overload);
    const obs::MetricsSnapshot round_end = registry.Snapshot();
    total_shed += repeat.shed;
    total_ok += repeat.ok;
    const double round_p99_us =
        DeltaPercentile(round_start, round_end, kLatency, 0.99) / 1e3;
    const double round_p50_us =
        DeltaPercentile(round_start, round_end, kLatency, 0.5) / 1e3;
    if (round == 0 || repeat.service_p99_us < burst.service_p99_us) {
      burst = repeat;
    }
    if (round_p99_us > 0 &&
        (admitted_p99_us == 0.0 || round_p99_us < admitted_p99_us)) {
      admitted_p99_us = round_p99_us;
    }
    if (round_p50_us > 0 &&
        (admitted_p50_us == 0.0 || round_p50_us < admitted_p50_us)) {
      admitted_p50_us = round_p50_us;
    }
  }
  add_row("overload(4x)", overload, burst);

  const double p99_ratio =
      unloaded_p99_us > 0 ? admitted_p99_us / unloaded_p99_us : 0.0;
  BenchReport& report = BenchReport::Get();
  report.AddMetric("capacity_qps", capacity_qps);
  report.AddMetric("unloaded_service_p50", unloaded_p50_us);
  // The admin-plane duty cycle at 4Hz (SL_CHECKed < 2% above), its
  // noise-bound A/B cross-check, and the traced pass's dominant-stage
  // p99s for eyeballing regressions. All informational: the duty cycle
  // is enforced by the SL_CHECK, not the diff gate.
  report.AddMetric("admin_overhead_pct", admin_overhead_pct);
  report.AddMetric("admin_ab_delta_pct", admin_ab_delta_pct);
  report.AddMetric(
      "traced_lookup_p99_us",
      traced.stage_p99_us[static_cast<size_t>(obs::ServeStage::kSnapshotLookup)]);
  report.AddMetric(
      "traced_topk_p99_us",
      traced.stage_p99_us[static_cast<size_t>(obs::ServeStage::kTopK)]);
  // No gated suffix on anything below: real numbers, but latency on a
  // shared 2-core box tracks co-tenant load, not the code under test.
  // The SL_CHECKs below are the per-run enforcement instead.
  report.AddMetric("overload_admitted_p50", admitted_p50_us);
  report.AddMetric("overload_admitted_p99", admitted_p99_us);
  // Informational (no gated suffix): how hard admission worked, and the
  // bounded-latency ratio the SL_CHECK below enforces.
  report.AddMetric("overload_shed_ratio",
                   total_ok + total_shed > 0
                       ? static_cast<double>(total_shed) / (total_ok + total_shed)
                       : 0.0);
  report.AddMetric("overload_p99_over_unloaded", p99_ratio);
  table.Emit(config);

  // The acceptance claims for the subsystem, checked on every run: under
  // 4x overload the server sheds instead of queueing, and what it does
  // admit still completes with a service p99 within 10x of unloaded.
  SL_CHECK(total_shed > 0) << "4x overload produced no shed responses";
  SL_CHECK(total_ok > 0) << "4x overload starved every admitted request";
  SL_CHECK(p99_ratio < 10.0)
      << "admitted server-side p99 " << admitted_p99_us << "us is "
      << p99_ratio << "x unloaded — admission queue is not bounding latency";

  server.Stop();
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, 0.05, 16));
  return 0;
}

// F17: concurrent query serving on a live stream. For 1/2/4/8 reader
// threads, ingests the same RMAT stream through ParallelIngestEngine with
// a publish cadence feeding a QueryService while the readers issue batched
// queries against the published snapshots; reports query throughput and
// latency per reader count, plus how much the publish barrier slowed the
// build relative to a no-publish baseline. Scaling columns only mean
// anything when the machine has that many hardware threads — the binary
// prints the count.

#include <algorithm>
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "serve/query_service.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "util/random.h"

namespace streamlink {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  Banner("F17", "snapshot-isolated query serving during live ingest");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  GeneratedGraph g =
      MakeWorkload(WorkloadSpec{"rmat", config.scale, config.seed});
  std::printf("stream: %zu edges, %u vertices\n", g.edges.size(),
              g.num_vertices);

  PredictorConfig predictor_config = config.predictor;
  predictor_config.sketch_size = 128;

  // Query workload: batches of overlapping pairs scored on two measures.
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(config.seed + 17);
  QueryRequest request;
  request.pairs = SampleOverlappingPairs(
      csr, std::min<uint32_t>(config.pairs, 64), rng);
  SL_CHECK(!request.pairs.empty()) << "graph too small to sample pairs";
  // Measures come from the service's defaults (set via the builder below),
  // exercising the request-completion path a transport client relies on.

  const uint64_t publish_every =
      std::max<uint64_t>(1, g.edges.size() / 20);
  std::printf("ingest threads: %u, publish every %llu edges\n\n",
              predictor_config.threads,
              static_cast<unsigned long long>(publish_every));

  // No-publish baseline: the same build without the snapshot barrier.
  double baseline_seconds;
  {
    VectorEdgeStream stream(g.edges);
    Stopwatch timer;
    SL_CHECK_OK(IngestEngineBuilder(predictor_config).Ingest(stream).status());
    baseline_seconds = timer.ElapsedSeconds();
  }

  ResultTable table({"readers", "queries", "qps", "mean_us", "p50_us",
                     "p99_us", "publishes", "ingest_seconds",
                     "ingest_overhead"});
  for (uint32_t readers : {1u, 2u, 4u, 8u}) {
    auto built = QueryServiceBuilder()
                     .DefaultMeasures(
                         {LinkMeasure::kJaccard, LinkMeasure::kAdamicAdar})
                     .Build();
    SL_CHECK(built.ok()) << built.status().ToString();
    QueryService& service = **built;
    ParallelIngestEngine engine = IngestEngineBuilder(predictor_config)
                                      .PublishEveryEdges(publish_every)
                                      .PublishTo(service)
                                      .BuildEngine();
    VectorEdgeStream raw(g.edges);
    auto tapped = service.WrapStream(raw);

    std::atomic<bool> done{false};
    std::vector<uint64_t> counts(readers, 0);
    std::vector<std::thread> threads;
    threads.reserve(readers);
    for (uint32_t r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        while (!done.load(std::memory_order_acquire)) {
          if (service.Query(request).ok()) ++counts[r];
        }
      });
    }
    Stopwatch timer;
    SL_CHECK_OK(engine.Build(*tapped).status());
    const double seconds = timer.ElapsedSeconds();
    done.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();

    uint64_t queries = 0;
    for (uint64_t c : counts) queries += c;
    table.AddRow({std::to_string(readers), std::to_string(queries),
                  ResultTable::Cell(seconds > 0 ? queries / seconds : 0.0),
                  ResultTable::Cell(service.latency().MeanMicros()),
                  ResultTable::Cell(service.latency().PercentileMicros(0.5)),
                  ResultTable::Cell(service.latency().PercentileMicros(0.99)),
                  std::to_string(service.publish_count()),
                  ResultTable::Cell(seconds),
                  ResultTable::Cell(baseline_seconds > 0
                                        ? seconds / baseline_seconds
                                        : 0.0)});
    // Headline scalars for BENCH json / bench_diff: the widest fan-out.
    BenchReport& report = BenchReport::Get();
    report.AddMetric("qps", seconds > 0 ? queries / seconds : 0.0);
    report.AddMetric("query_p50_us",
                     service.latency().PercentileMicros(0.5));
    report.AddMetric("query_p99_us",
                     service.latency().PercentileMicros(0.99));
  }
  table.Emit(config);
}

}  // namespace
}  // namespace bench
}  // namespace streamlink

int main(int argc, char** argv) {
  streamlink::bench::Run(
      streamlink::bench::BenchConfig::FromFlags(argc, argv, 1.0, 64));
  return 0;
}
